"""Multistage graphs — the paper's canonical serial-DP substrate.

A *multistage graph* (Figure 1 of the paper) partitions its vertices into
stages; edges run only between adjacent stages.  The minimum-cost path
problem on such a graph is the canonical monadic-serial DP problem
(Section 2.1) and the workload for all three systolic designs of
Section 3.

Two representations are provided, mirroring the paper's two input
regimes:

* :class:`MultistageGraph` — **edge-cost form**: one explicit cost matrix
  per pair of adjacent stages (the form fed to the Fig. 3 / Fig. 4
  matrix-multiplication arrays).
* :class:`NodeValueProblem` — **node-value form** (eq. 4): each stage is a
  discrete variable with ``m`` quantized values and edge costs are
  *computed* from the endpoint values by a stage cost function
  ``f(x, y)``.  The paper notes this reduces input bandwidth by an order
  of magnitude and is the form fed to the Fig. 5 feedback array.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Iterator, Sequence

import numpy as np

from ..semiring import MIN_PLUS, Semiring

__all__ = ["MultistageGraph", "NodeValueProblem", "GraphError"]


class GraphError(ValueError):
    """Raised for malformed multistage graphs or problems."""


@dataclasses.dataclass(frozen=True)
class MultistageGraph:
    """A multistage graph in edge-cost form.

    Parameters
    ----------
    costs:
        ``costs[k]`` is the cost matrix between stage ``k`` and stage
        ``k + 1`` with shape ``(size of stage k, size of stage k + 1)``;
        entry ``(i, j)`` is the cost of the edge from node ``i`` of stage
        ``k`` to node ``j`` of stage ``k + 1``.  ``semiring.zero``
        (``+inf`` for min-plus) encodes a missing edge.
    semiring:
        The cost algebra; min-plus by default (shortest path).

    The number of stages is ``len(costs) + 1``.
    """

    costs: tuple[np.ndarray, ...]
    semiring: Semiring = MIN_PLUS

    def __post_init__(self) -> None:
        if not self.costs:
            raise GraphError("a multistage graph needs at least one edge layer")
        mats = tuple(self.semiring.asarray(c) for c in self.costs)
        for k, c in enumerate(mats):
            if c.ndim != 2:
                raise GraphError(f"costs[{k}] must be 2-D, got shape {c.shape}")
            if min(c.shape) < 1:
                raise GraphError(f"costs[{k}] has an empty stage: shape {c.shape}")
        for k in range(len(mats) - 1):
            if mats[k].shape[1] != mats[k + 1].shape[0]:
                raise GraphError(
                    f"stage-size mismatch between layers {k} and {k + 1}: "
                    f"{mats[k].shape} then {mats[k + 1].shape}"
                )
        object.__setattr__(self, "costs", mats)

    # ------------------------------------------------------------------
    # Shape queries
    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        """Number of vertex stages (``len(costs) + 1``)."""
        return len(self.costs) + 1

    @property
    def num_layers(self) -> int:
        """Number of edge layers between adjacent stages."""
        return len(self.costs)

    @property
    def stage_sizes(self) -> tuple[int, ...]:
        """Vertex count of every stage, source side first."""
        return tuple(c.shape[0] for c in self.costs) + (self.costs[-1].shape[1],)

    @property
    def is_single_source_sink(self) -> bool:
        """True when the first and last stages each hold exactly one vertex."""
        sizes = self.stage_sizes
        return sizes[0] == 1 and sizes[-1] == 1

    def num_edges(self) -> int:
        """Total number of present (non-``zero``) edges."""
        return int(sum(np.count_nonzero(c != self.semiring.zero) for c in self.costs))

    # ------------------------------------------------------------------
    # Matrix-string view (Section 3.1)
    # ------------------------------------------------------------------
    def as_matrices(self) -> list[np.ndarray]:
        """The cost matrices as the string to be semiring-multiplied.

        Multiplying the returned string left-to-right (or in any other
        association — the semiring is associative) yields the matrix of
        optimal costs from every stage-0 vertex to every final-stage
        vertex, exactly eq. (8) of the paper.
        """
        return [c.copy() for c in self.costs]

    def serial_op_count(self) -> int:
        """Shift-multiply-accumulate count of the single-PE evaluation.

        Evaluates the matrix string right-to-left as matrix-vector
        products, the uniprocessor schedule the paper compares against.
        For an ``(N+1)``-stage single-source/sink graph with ``m`` nodes
        per intermediate stage this equals ``(N - 2)·m² + m`` (the
        denominator of eq. 9).
        """
        sizes = self.stage_sizes
        # Right-to-left: the last cost matrix collapses to a vector of
        # length sizes[-2] for free; each earlier layer k is a
        # (sizes[k] x sizes[k+1]) mat-vec.
        return int(sum(sizes[k] * sizes[k + 1] for k in range(self.num_layers - 1)))

    # ------------------------------------------------------------------
    # Path enumeration (brute-force oracle for tests)
    # ------------------------------------------------------------------
    def iter_paths(self) -> Iterator[tuple[int, ...]]:
        """Yield every source→sink path as a tuple of per-stage node indices.

        Exponential in the number of stages; intended only as a
        brute-force oracle on small instances.
        """
        ranges = [range(s) for s in self.stage_sizes]
        yield from itertools.product(*ranges)

    def path_cost(self, path: Sequence[int]) -> float:
        """⊗-accumulated cost of a full path (one node index per stage)."""
        if len(path) != self.num_stages:
            raise GraphError(
                f"path length {len(path)} != number of stages {self.num_stages}"
            )
        sizes = self.stage_sizes
        for k, node in enumerate(path):
            if not 0 <= node < sizes[k]:
                raise GraphError(f"path[{k}] = {node} outside stage of size {sizes[k]}")
        sr = self.semiring
        acc = sr.one
        for k in range(self.num_layers):
            acc = sr.scalar_mul(acc, float(self.costs[k][path[k], path[k + 1]]))
        return acc

    def brute_force_optimum(self) -> tuple[float, tuple[int, ...]]:
        """Best cost and path by exhaustive enumeration (small graphs only)."""
        sr = self.semiring
        best_cost = sr.zero
        best_path: tuple[int, ...] | None = None
        for path in self.iter_paths():
            c = self.path_cost(path)
            if sr.scalar_add(c, best_cost) == c and (
                best_path is None or c != best_cost
            ):
                best_cost, best_path = c, path
            elif best_path is None:
                best_cost, best_path = c, path
        assert best_path is not None
        return best_cost, best_path

    def reversed(self) -> "MultistageGraph":
        """The same graph traversed sink→source (matrices transposed, reversed)."""
        return MultistageGraph(
            costs=tuple(c.T.copy() for c in reversed(self.costs)),
            semiring=self.semiring,
        )


@dataclasses.dataclass(frozen=True)
class NodeValueProblem:
    """A serial optimization problem in node-value form (paper eq. 4).

    ``min_X Σ_{i=1}^{N-1} g(X_i, X_{i+1})`` where each discrete variable
    ``X_i`` takes the quantized values ``values[i]`` and the stage cost
    ``g`` is computed from the endpoint values.  Only node values — not
    ``m²`` edge costs per layer — need to enter a systolic array, which is
    the input-bandwidth argument for the Fig. 5 design.

    Parameters
    ----------
    values:
        ``values[k]`` is the 1-D array of quantized values of variable
        ``X_{k+1}`` (stage ``k``).
    edge_cost:
        Vectorized ``g``: called as ``edge_cost(xk, xk1)`` on broadcastable
        arrays of stage-``k`` and stage-``k+1`` values, returns elementwise
        costs.  The paper assumes ``g`` independent of the stage index
        (required for systolic feeding); a per-stage variant can be
        expressed by baking the stage index into the node values.
    semiring:
        Cost algebra, min-plus by default.
    """

    values: tuple[np.ndarray, ...]
    edge_cost: Callable[[np.ndarray, np.ndarray], np.ndarray]
    semiring: Semiring = MIN_PLUS

    def __post_init__(self) -> None:
        if len(self.values) < 2:
            raise GraphError("a node-value problem needs at least two stages")
        vals = tuple(np.asarray(v, dtype=np.float64) for v in self.values)
        for k, v in enumerate(vals):
            if v.ndim != 1:
                raise GraphError(f"values[{k}] must be 1-D, got shape {v.shape}")
            if v.size == 0:
                raise GraphError(f"values[{k}] is empty")
        object.__setattr__(self, "values", vals)

    @property
    def num_stages(self) -> int:
        """Number of variables / stages ``N``."""
        return len(self.values)

    @property
    def stage_sizes(self) -> tuple[int, ...]:
        """Number of quantized values in each stage."""
        return tuple(v.size for v in self.values)

    @property
    def is_uniform(self) -> bool:
        """True when every stage has the same number of quantized values."""
        sizes = self.stage_sizes
        return all(s == sizes[0] for s in sizes)

    def cost_matrix(self, k: int) -> np.ndarray:
        """Materialized cost matrix between stage ``k`` and ``k + 1``.

        ``out[i, j] = g(values[k][i], values[k+1][j])`` — used to convert
        the problem to edge-cost form and by the sequential reference
        solver.
        """
        if not 0 <= k < self.num_stages - 1:
            raise GraphError(f"layer index {k} out of range")
        xk = self.values[k][:, None]
        xk1 = self.values[k + 1][None, :]
        out = self.semiring.asarray(self.edge_cost(xk, xk1))
        expected = (self.values[k].size, self.values[k + 1].size)
        if out.shape != expected:
            raise GraphError(
                f"edge_cost returned shape {out.shape}, expected {expected}; "
                "it must be vectorized over broadcast inputs"
            )
        return out

    def to_graph(self) -> MultistageGraph:
        """Materialize the equivalent edge-cost multistage graph."""
        return MultistageGraph(
            costs=tuple(self.cost_matrix(k) for k in range(self.num_stages - 1)),
            semiring=self.semiring,
        )

    def input_bandwidth(self) -> tuple[int, int]:
        """(node-value inputs, edge-cost inputs) for this instance.

        The first component is what the Fig. 5 array reads
        (``Σ m_k`` values); the second is what an edge-fed array would
        read (``Σ m_k·m_{k+1}`` costs).  Their ratio is the
        "order-of-magnitude reduction in input overhead" claimed in
        Section 3.2.
        """
        sizes = self.stage_sizes
        node_inputs = int(sum(sizes))
        edge_inputs = int(sum(sizes[k] * sizes[k + 1] for k in range(len(sizes) - 1)))
        return node_inputs, edge_inputs
