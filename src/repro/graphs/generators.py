"""Workload generators.

The paper motivates serial DP with four application domains
(Section 2.2): traffic-signal timing, circuit design, fluid flow and task
scheduling.  Each generator below produces a :class:`NodeValueProblem`
with the interaction structure and cost shape of the corresponding
domain, plus generic random-instance helpers used by tests and benches.

All generators take an explicit :class:`numpy.random.Generator` so
instances are reproducible; none touch global RNG state.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..semiring import MIN_PLUS, Semiring
from .multistage import GraphError, MultistageGraph, NodeValueProblem

__all__ = [
    "random_multistage",
    "uniform_multistage",
    "single_source_sink",
    "fig1a_graph",
    "fig1b_problem",
    "traffic_light_problem",
    "circuit_design_problem",
    "fluid_flow_problem",
    "scheduling_problem",
    "inventory_problem",
    "production_problem",
    "gain_schedule_problem",
    "curve_tracking_problem",
]


def random_multistage(
    rng: np.random.Generator,
    stage_sizes: Sequence[int],
    *,
    low: float = 0.0,
    high: float = 10.0,
    semiring: Semiring = MIN_PLUS,
    edge_probability: float = 1.0,
) -> MultistageGraph:
    """Random multistage graph with the given stage sizes.

    Edge costs are uniform in ``[low, high)``.  With
    ``edge_probability < 1`` edges are dropped independently (cost set to
    the semiring zero), except that each non-final-stage vertex keeps at
    least one outgoing edge and each non-first-stage vertex at least one
    incoming edge, so a full path always exists.
    """
    if len(stage_sizes) < 2:
        raise GraphError("need at least two stages")
    if not 0.0 < edge_probability <= 1.0:
        raise GraphError("edge_probability must be in (0, 1]")
    costs = []
    for k in range(len(stage_sizes) - 1):
        shape = (int(stage_sizes[k]), int(stage_sizes[k + 1]))
        c = rng.uniform(low, high, size=shape)
        if edge_probability < 1.0:
            drop = rng.random(shape) >= edge_probability
            # Keep connectivity: one guaranteed edge out of each row and
            # into each column.
            keep_col = rng.integers(0, shape[1], size=shape[0])
            drop[np.arange(shape[0]), keep_col] = False
            keep_row = rng.integers(0, shape[0], size=shape[1])
            drop[keep_row, np.arange(shape[1])] = False
            c = np.where(drop, semiring.zero, c)
        costs.append(c)
    return MultistageGraph(costs=tuple(costs), semiring=semiring)


def uniform_multistage(
    rng: np.random.Generator,
    num_stages: int,
    nodes_per_stage: int,
    *,
    low: float = 0.0,
    high: float = 10.0,
    semiring: Semiring = MIN_PLUS,
) -> MultistageGraph:
    """Random graph with ``num_stages`` stages of ``nodes_per_stage`` nodes each."""
    return random_multistage(
        rng,
        [nodes_per_stage] * num_stages,
        low=low,
        high=high,
        semiring=semiring,
    )


def single_source_sink(
    rng: np.random.Generator,
    num_intermediate_stages: int,
    nodes_per_stage: int,
    *,
    low: float = 0.0,
    high: float = 10.0,
    semiring: Semiring = MIN_PLUS,
) -> MultistageGraph:
    """Graph shaped like Figure 1(a): 1 source, intermediate stages, 1 sink.

    The stage-size vector is ``[1, m, m, …, m, 1]`` with
    ``num_intermediate_stages`` interior stages of ``nodes_per_stage``
    vertices.  This is the shape for which the paper quotes the
    ``(N - 2)m² + m`` uniprocessor iteration count.
    """
    if num_intermediate_stages < 1:
        raise GraphError("need at least one intermediate stage")
    sizes = [1] + [nodes_per_stage] * num_intermediate_stages + [1]
    return random_multistage(rng, sizes, low=low, high=high, semiring=semiring)


def fig1a_graph(rng: np.random.Generator | None = None) -> MultistageGraph:
    """The example graph of Figure 1(a): stages 1-3-3-3-1.

    With a supplied ``rng``, integer costs in [1, 9]; otherwise a fixed
    instance whose optimum the tests know in closed form.
    """
    if rng is None:
        a = np.array([[2.0, 5.0, 3.0]])
        b = np.array([[4.0, 1.0, 6.0], [2.0, 7.0, 5.0], [3.0, 2.0, 4.0]])
        c = np.array([[1.0, 8.0, 2.0], [6.0, 3.0, 1.0], [5.0, 2.0, 9.0]])
        d = np.array([[3.0], [4.0], [2.0]])
        return MultistageGraph(costs=(a, b, c, d))
    sizes = [1, 3, 3, 3, 1]
    costs = tuple(
        rng.integers(1, 10, size=(sizes[k], sizes[k + 1])).astype(np.float64)
        for k in range(4)
    )
    return MultistageGraph(costs=costs)


def fig1b_problem(rng: np.random.Generator | None = None) -> NodeValueProblem:
    """The example problem of Figure 1(b): 4 stages × 3 quantized values.

    Multiple sources and sinks; the stage cost is the squared difference
    of adjacent node values (a smooth trajectory objective).
    """
    if rng is None:
        values = tuple(
            np.array(v, dtype=np.float64)
            for v in ([1.0, 4.0, 6.0], [2.0, 3.0, 7.0], [0.0, 5.0, 8.0], [1.0, 2.0, 9.0])
        )
    else:
        values = tuple(np.sort(rng.uniform(0.0, 10.0, size=3)) for _ in range(4))
    return NodeValueProblem(values=values, edge_cost=lambda x, y: (x - y) ** 2)


def traffic_light_problem(
    rng: np.random.Generator,
    num_intersections: int,
    num_timings: int,
    *,
    cycle: float = 60.0,
) -> NodeValueProblem:
    """Traffic-signal coordination (paper Section 2.2).

    ``X_i`` is the possible green-onset time of intersection ``i`` within
    a common cycle; the stage cost is the timing mismatch between
    adjacent intersections (vehicles arriving on the offset), modelled as
    the circular-difference penalty ``min(|Δ|, cycle - |Δ|)``.
    """
    if num_intersections < 2 or num_timings < 1:
        raise GraphError("need >= 2 intersections and >= 1 timing per stage")
    values = tuple(
        np.sort(rng.uniform(0.0, cycle, size=num_timings))
        for _ in range(num_intersections)
    )

    def offset_penalty(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        delta = np.abs(x - y)
        return np.minimum(delta, cycle - delta)

    return NodeValueProblem(values=values, edge_cost=offset_penalty)


def circuit_design_problem(
    rng: np.random.Generator,
    num_points: int,
    num_levels: int,
    *,
    vmax: float = 5.0,
    conductance: float = 0.35,
) -> NodeValueProblem:
    """Voltage assignment along a circuit path (paper Section 2.2).

    ``X_i`` is a candidate voltage at point ``i``; the edge cost is the
    power dissipated between adjacent points, ``G·(V_i − V_{i+1})²``.
    """
    if num_points < 2 or num_levels < 1:
        raise GraphError("need >= 2 points and >= 1 voltage level per point")
    values = tuple(
        np.sort(rng.uniform(0.0, vmax, size=num_levels)) for _ in range(num_points)
    )
    return NodeValueProblem(
        values=values, edge_cost=lambda v1, v2: conductance * (v1 - v2) ** 2
    )


def fluid_flow_problem(
    rng: np.random.Generator,
    num_pumps: int,
    num_pressures: int,
    *,
    pmax: float = 100.0,
) -> NodeValueProblem:
    """Pump-pressure scheduling (paper Section 2.2).

    ``X_i`` is a candidate pressure at pump ``i``; the cost penalizes
    adverse pressure gradients (flow reversal) plus pumping effort.
    Formulated as maximizing flow = minimizing negative flow under
    min-plus.
    """
    if num_pumps < 2 or num_pressures < 1:
        raise GraphError("need >= 2 pumps and >= 1 pressure level per pump")
    values = tuple(
        np.sort(rng.uniform(0.0, pmax, size=num_pressures)) for _ in range(num_pumps)
    )

    def flow_cost(p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
        gradient = p1 - p2  # positive gradient drives flow downstream
        effort = 0.01 * (p1 + p2)
        return np.where(gradient > 0, -gradient + effort, 10.0 * -gradient + effort)

    return NodeValueProblem(values=values, edge_cost=flow_cost)


def scheduling_problem(
    rng: np.random.Generator,
    num_tasks: int,
    num_slots: int,
    *,
    horizon: float = 50.0,
    setup: float = 2.0,
) -> NodeValueProblem:
    """Serial task scheduling (paper Section 2.2).

    ``X_i`` is a candidate completion time of task ``i``; successive
    tasks must be separated by at least ``setup`` time units, with a
    heavy penalty for overlap and a linear waiting cost otherwise.
    """
    if num_tasks < 2 or num_slots < 1:
        raise GraphError("need >= 2 tasks and >= 1 slot per task")
    values = tuple(
        np.sort(rng.uniform(0.0, horizon, size=num_slots)) for _ in range(num_tasks)
    )

    def delay_cost(t1: np.ndarray, t2: np.ndarray) -> np.ndarray:
        gap = t2 - t1
        return np.where(gap >= setup, gap - setup, 100.0 + (setup - gap) ** 2)

    return NodeValueProblem(values=values, edge_cost=delay_cost)


def inventory_problem(
    rng: np.random.Generator,
    num_periods: int,
    max_stock: int,
    *,
    holding: float = 1.0,
    order_cost: float = 3.0,
    shortage: float = 12.0,
) -> NodeValueProblem:
    """Inventory control (paper Section 3.2: "inventory systems").

    ``X_i`` is the end-of-period stock level of period ``i`` (quantized
    0 … max_stock).  Moving from stock ``s`` to stock ``s'`` against the
    period's demand ``d`` requires ordering ``s' − s + d`` units; the
    stage cost charges ordering (fixed + linear), holding on carried
    stock, and a shortage penalty when the implied order is infeasible
    (negative).
    """
    if num_periods < 2 or max_stock < 0:
        raise GraphError("need >= 2 periods and a nonnegative stock cap")
    demands = rng.integers(0, max(1, max_stock), size=num_periods - 1)
    values = tuple(
        np.arange(max_stock + 1, dtype=np.float64) for _ in range(num_periods)
    )
    demand_iter = iter(demands)
    # One closure per layer would need per-stage costs; the paper's
    # systolic feeding assumes a stage-independent f, so demand is baked
    # into an average-demand model (the synthetic analogue documented in
    # DESIGN.md) while per-stage exactness is available via to_graph().
    mean_demand = float(np.mean(demands))

    def stage_cost(s: np.ndarray, s_next: np.ndarray) -> np.ndarray:
        order = s_next - s + mean_demand
        infeasible = order < 0
        ordering = np.where(order > 0, order_cost + 1.0 * order, 0.0)
        hold = holding * s_next
        short = np.where(infeasible, shortage * (1.0 + -order), 0.0)
        return ordering + hold + short

    return NodeValueProblem(values=values, edge_cost=stage_cost)


def production_problem(
    rng: np.random.Generator,
    num_stages: int,
    num_rates: int,
    *,
    rate_max: float = 10.0,
    changeover: float = 2.0,
) -> NodeValueProblem:
    """Multistage production process (paper Section 3.2).

    ``X_i`` is the production rate of stage ``i``; cost charges the
    rate-change (machine changeover, quadratic) plus a convex running
    cost around an efficient operating point.
    """
    if num_stages < 2 or num_rates < 1:
        raise GraphError("need >= 2 stages and >= 1 rate per stage")
    sweet_spot = rate_max * 0.6
    values = tuple(
        np.sort(rng.uniform(0.0, rate_max, size=num_rates))
        for _ in range(num_stages)
    )

    def stage_cost(r1: np.ndarray, r2: np.ndarray) -> np.ndarray:
        return changeover * (r1 - r2) ** 2 + 0.1 * (r2 - sweet_spot) ** 2

    return NodeValueProblem(values=values, edge_cost=stage_cost)


def gain_schedule_problem(
    rng: np.random.Generator,
    num_steps: int,
    num_gains: int,
    *,
    process_noise: float = 1.0,
    measurement_noise: float = 0.5,
) -> NodeValueProblem:
    """Quantized filter-gain scheduling (paper Section 3.2: "Kalman
    filtering" as a sequentially controlled system).

    ``X_i`` is the filter gain applied at step ``i`` (quantized in
    (0, 1)).  The stage cost is a steady-state error-variance proxy —
    high gain admits measurement noise, low gain tracks slowly against
    process noise — plus a gain-slewing penalty.  A synthetic analogue
    of the covariance recursion that keeps the stage cost a pure
    function of adjacent node values, as the systolic feeding requires
    (substitution documented in DESIGN.md).
    """
    if num_steps < 2 or num_gains < 1:
        raise GraphError("need >= 2 steps and >= 1 gain per step")
    values = tuple(
        np.sort(rng.uniform(0.05, 0.95, size=num_gains)) for _ in range(num_steps)
    )

    def stage_cost(g1: np.ndarray, g2: np.ndarray) -> np.ndarray:
        variance = g2**2 * measurement_noise + (1.0 - g2) ** 2 * process_noise
        slew = 0.5 * (g1 - g2) ** 2
        return variance + slew

    return NodeValueProblem(values=values, edge_cost=stage_cost)


def curve_tracking_problem(
    rng: np.random.Generator,
    num_rows: int,
    num_cols: int,
    *,
    smoothness: float = 2.0,
    noise: float = 0.3,
) -> MultistageGraph:
    """Curve detection by DP over image rows (Clarke & Dyer, paper ref. [9]).

    A bright, roughly-vertical curve is synthesized in a ``num_rows x
    num_cols`` intensity image; stage ``k`` is image row ``k``, vertices
    are column positions, and the edge cost trades off losing intensity
    against bending the curve:

        cost(c → c') = smoothness·|c − c'| − intensity[row+1, c']

    Because the intensity term depends on the *stage*, this workload is
    expressed in edge-cost form (a :class:`MultistageGraph`); the paper
    notes the node-value feeding of Fig. 5 requires stage-independent
    costs, so this is exactly the case that wants the Fig. 3/4 matrix
    arrays (after :func:`~repro.graphs.transforms.add_virtual_terminals`).

    The synthesized curve's column track is stored nowhere — recovering
    it through the DP is the point; tests check the DP path follows the
    bright ridge.
    """
    if num_rows < 2 or num_cols < 2:
        raise GraphError("need at least a 2x2 image")
    # Random smooth walk for the true curve.
    track = np.empty(num_rows, dtype=np.int64)
    track[0] = rng.integers(num_cols // 4, max(num_cols // 4 + 1, 3 * num_cols // 4))
    for r in range(1, num_rows):
        step = rng.integers(-1, 2)
        track[r] = np.clip(track[r - 1] + step, 0, num_cols - 1)
    image = rng.uniform(0.0, noise, size=(num_rows, num_cols))
    image[np.arange(num_rows), track] += 1.0
    # Soft shoulders so the ridge is wider than one pixel.
    for off in (-1, 1):
        cols = np.clip(track + off, 0, num_cols - 1)
        image[np.arange(num_rows), cols] += 0.35

    cols = np.arange(num_cols, dtype=np.float64)
    costs = []
    for r in range(num_rows - 1):
        bend = smoothness * np.abs(cols[:, None] - cols[None, :])
        costs.append(bend - image[r + 1][None, :])
    return MultistageGraph(costs=tuple(costs))
