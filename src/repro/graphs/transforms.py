"""Graph transforms: adapting problems to array-shaped inputs.

The Fig. 3/4 linear arrays consume single-sink strings (the paper's
single-source/single-sink analysis); :func:`add_virtual_terminals`
adapts any uniform multistage graph by framing it with zero-cost
(⊗-identity) boundary stages, preserving the optimum — the standard
reduction the paper applies implicitly when it speaks of "the first and
last matrices degenerate into row and column vectors".
"""

from __future__ import annotations

import numpy as np

from .multistage import MultistageGraph

__all__ = ["add_virtual_terminals"]


def add_virtual_terminals(graph: MultistageGraph) -> MultistageGraph:
    """Frame ``graph`` with a zero-cost virtual source and sink.

    The returned graph has stage sizes ``(1,) + old + (1,)``; the added
    boundary edges carry the semiring ⊗-identity (cost 0 for min-plus),
    so its single source→sink optimum equals the ⊕-reduction of the
    original graph's full first-stage × last-stage cost matrix.  Tests
    assert the equality on random instances.

    Idempotent in effect (framing an already single-source/sink graph
    adds degenerate unit stages but leaves the optimum unchanged).
    """
    sr = graph.semiring
    sizes = graph.stage_sizes
    source_row = sr.ones((1, sizes[0]))
    sink_col = sr.ones((sizes[-1], 1))
    return MultistageGraph(
        costs=(source_row,) + tuple(np.copy(c) for c in graph.costs) + (sink_col,),
        semiring=sr,
    )
