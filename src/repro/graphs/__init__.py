"""Multistage graphs, workload generators, interaction graphs, paths."""

from .multistage import GraphError, MultistageGraph, NodeValueProblem
from .generators import (
    circuit_design_problem,
    curve_tracking_problem,
    gain_schedule_problem,
    inventory_problem,
    production_problem,
    fig1a_graph,
    fig1b_problem,
    fluid_flow_problem,
    random_multistage,
    scheduling_problem,
    single_source_sink,
    traffic_light_problem,
    uniform_multistage,
)
from .interaction import InteractionGraph, Term, chain_order, is_serial_objective
from .transforms import add_virtual_terminals
from .paths import StagePath, all_shortest_paths_equal, validate_path

__all__ = [
    "GraphError",
    "MultistageGraph",
    "NodeValueProblem",
    "random_multistage",
    "uniform_multistage",
    "single_source_sink",
    "fig1a_graph",
    "fig1b_problem",
    "traffic_light_problem",
    "circuit_design_problem",
    "fluid_flow_problem",
    "scheduling_problem",
    "inventory_problem",
    "production_problem",
    "gain_schedule_problem",
    "curve_tracking_problem",
    "add_virtual_terminals",
    "InteractionGraph",
    "Term",
    "is_serial_objective",
    "chain_order",
    "StagePath",
    "validate_path",
    "all_shortest_paths_equal",
]
