"""Lightweight wall-clock timing spans (``perf_counter_ns``).

The RTL backends produce cycle-level telemetry through the trace bus,
but the vectorized fast backends never tick a machine — whole phases
collapse into a handful of NumPy reductions.  To keep the two backends
comparable, :func:`~repro.systolic.fabric.run_with_backend` wraps every
backend invocation in a :func:`span`, so a run under
:func:`collect_timings` yields named nanosecond timings
(``<design>.backend.rtl`` / ``<design>.backend.fast``) regardless of
which engine executed.

The module is deliberately dependency-free (stdlib only) and the
no-collector path is a single module-level list check returning a shared
no-op context manager, so instrumented code pays nothing when timing is
off — the same "free when unsubscribed" guarantee the event bus makes.
"""

from __future__ import annotations

import contextlib
import time
from typing import Any, Iterator

__all__ = ["TimingCollector", "collect_timings", "active_collector", "span"]

#: Stack of installed collectors; :func:`span` records into the top one.
_STACK: list["TimingCollector"] = []


class TimingCollector:
    """Accumulates named wall-clock spans, in nanoseconds."""

    def __init__(self) -> None:
        self.spans: dict[str, list[int]] = {}

    def record(self, name: str, elapsed_ns: int) -> None:
        """Append one span measurement under ``name``."""
        self.spans.setdefault(name, []).append(int(elapsed_ns))

    def total_ns(self, name: str) -> int:
        """Total nanoseconds recorded under ``name`` (0 if absent)."""
        return sum(self.spans.get(name, ()))

    def summary(self) -> dict[str, dict[str, Any]]:
        """JSON-able per-span statistics: count, total/mean/max seconds."""
        out: dict[str, dict[str, Any]] = {}
        for name in sorted(self.spans):
            values = self.spans[name]
            total = sum(values)
            out[name] = {
                "count": len(values),
                "total_seconds": total / 1e9,
                "mean_seconds": total / len(values) / 1e9,
                "max_seconds": max(values) / 1e9,
            }
        return out


def active_collector() -> TimingCollector | None:
    """The collector spans currently record into, or ``None``."""
    return _STACK[-1] if _STACK else None


@contextlib.contextmanager
def collect_timings(
    collector: TimingCollector | None = None,
) -> Iterator[TimingCollector]:
    """Install ``collector`` (or a fresh one) for the dynamic extent.

    Collectors nest; :func:`span` records into the innermost one only.
    """
    c = collector if collector is not None else TimingCollector()
    _STACK.append(c)
    try:
        yield c
    finally:
        _STACK.remove(c)


class _NullSpan:
    """Shared do-nothing context manager for the collector-off fast path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "collector", "_start")

    def __init__(self, name: str, collector: TimingCollector):
        self.name = name
        self.collector = collector

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.collector.record(self.name, time.perf_counter_ns() - self._start)
        return False


def span(name: str):
    """Context manager timing ``name`` into the active collector.

    Returns a shared no-op when no collector is installed, so callers
    can wrap hot code unconditionally.
    """
    if not _STACK:
        return _NULL_SPAN
    return _Span(name, _STACK[-1])
