"""Diff two runs: per-metric deltas between saved or in-memory runs.

A :class:`RunComparison` flattens each side — the
:class:`~repro.systolic.fabric.RunReport` scalars, an optional
:class:`~repro.telemetry.metrics.MetricsRegistry` snapshot, and optional
:class:`~repro.telemetry.timing.TimingCollector` summaries — into a flat
``name → value`` map and reports per-metric deltas.  Typical uses:

* rtl vs fast backend on the same instance (counters must agree; wall
  time must not) — the cross-backend contract as a diffable table;
* the same command on two commits (regression triage on saved
  ``systolic_run`` JSON files via ``python -m repro compare``).
"""

from __future__ import annotations

import dataclasses
import math
import pathlib
from typing import Any, Mapping

from ..systolic.fabric import RunReport

__all__ = ["MetricDelta", "RunComparison", "flatten_report", "flatten_metrics"]

#: RunReport scalar fields/properties a comparison diffs.
REPORT_SCALARS = (
    "num_pes",
    "iterations",
    "wall_ticks",
    "serial_ops",
    "total_ops",
    "input_words",
    "output_words",
    "broadcast_words",
    "processor_utilization",
    "busy_fraction",
)


@dataclasses.dataclass(frozen=True)
class MetricDelta:
    """One metric's value on each side and the resulting delta."""

    name: str
    a: float | None  # None = absent on that side
    b: float | None

    @property
    def delta(self) -> float | None:
        if self.a is None or self.b is None:
            return None
        return self.b - self.a

    @property
    def pct(self) -> float | None:
        """Relative change in percent; ``None`` when undefined (a == 0)."""
        if self.a is None or self.b is None or self.a == 0:
            return None
        return 100.0 * (self.b - self.a) / abs(self.a)

    @property
    def changed(self) -> bool:
        if self.a is None or self.b is None:
            return True
        return not math.isclose(self.a, self.b, rel_tol=1e-12, abs_tol=0.0)


def flatten_report(report: RunReport) -> dict[str, float]:
    """Scalar ``name → value`` view of a run report."""
    return {name: float(getattr(report, name)) for name in REPORT_SCALARS}


def flatten_metrics(snapshot: Mapping[str, Any]) -> dict[str, float]:
    """Flatten a :meth:`MetricsRegistry.snapshot` dict to scalar series.

    Counters/gauges flatten to ``name{k="v",...}``; histograms to their
    ``_count`` and ``_sum`` series (bucket-level diffs add noise without
    aiding triage).
    """
    out: dict[str, float] = {}
    for name, family in snapshot.get("metrics", {}).items():
        for series in family.get("series", ()):
            labels = series.get("labels", {})
            suffix = (
                "{" + ",".join(f'{k}="{v}"' for k, v in sorted(labels.items())) + "}"
                if labels
                else ""
            )
            if family.get("type") == "histogram":
                out[f"{name}_count{suffix}"] = float(series["count"])
                out[f"{name}_sum{suffix}"] = float(series["sum"])
            else:
                out[f"{name}{suffix}"] = float(series["value"])
    return out


def flatten_timings(summary: Mapping[str, Any]) -> dict[str, float]:
    """Flatten a :meth:`TimingCollector.summary` dict to total seconds."""
    return {
        f"timing:{name}.total_seconds": float(stats["total_seconds"])
        for name, stats in summary.items()
    }


class RunComparison:
    """Two flattened runs plus labels; produces deltas and a text table."""

    def __init__(
        self,
        label_a: str,
        label_b: str,
        values_a: Mapping[str, float],
        values_b: Mapping[str, float],
    ):
        self.label_a = label_a
        self.label_b = label_b
        self.values_a = dict(values_a)
        self.values_b = dict(values_b)

    @classmethod
    def from_reports(
        cls,
        report_a: RunReport,
        report_b: RunReport,
        *,
        label_a: str | None = None,
        label_b: str | None = None,
        metrics_a: Mapping[str, Any] | None = None,
        metrics_b: Mapping[str, Any] | None = None,
        timings_a: Mapping[str, Any] | None = None,
        timings_b: Mapping[str, Any] | None = None,
    ) -> "RunComparison":
        """Compare two in-memory runs (optionally with metrics/timings)."""

        def side(report, metrics, timings):
            values = flatten_report(report)
            if metrics:
                values.update(flatten_metrics(metrics))
            if timings:
                values.update(flatten_timings(timings))
            return values

        return cls(
            label_a or f"{report_a.design}/{report_a.backend}",
            label_b or f"{report_b.design}/{report_b.backend}",
            side(report_a, metrics_a, timings_a),
            side(report_b, metrics_b, timings_b),
        )

    @classmethod
    def from_files(
        cls, path_a: str | pathlib.Path, path_b: str | pathlib.Path
    ) -> "RunComparison":
        """Compare two ``systolic_run`` JSON files written by ``save_run``."""
        from .. import io as repro_io

        rec_a = repro_io.load_run_record(path_a)
        rec_b = repro_io.load_run_record(path_b)
        return cls.from_reports(
            rec_a.report,
            rec_b.report,
            label_a=pathlib.Path(path_a).name,
            label_b=pathlib.Path(path_b).name,
            metrics_a=rec_a.metrics,
            metrics_b=rec_b.metrics,
            timings_a=rec_a.timings,
            timings_b=rec_b.timings,
        )

    def deltas(self, *, only_changed: bool = False) -> list[MetricDelta]:
        """Per-metric deltas over the union of both sides' metric names."""
        names = sorted(set(self.values_a) | set(self.values_b))
        out = [
            MetricDelta(name, self.values_a.get(name), self.values_b.get(name))
            for name in names
        ]
        if only_changed:
            out = [d for d in out if d.changed]
        return out

    def render(self, *, only_changed: bool = False) -> str:
        """Aligned ``metric | A | B | delta | delta%`` table."""

        def fmt(v: float | None) -> str:
            if v is None:
                return "-"
            if float(v).is_integer() and abs(v) < 1e15:
                return str(int(v))
            return f"{v:.6g}"

        rows = [("metric", self.label_a, self.label_b, "delta", "delta%")]
        for d in self.deltas(only_changed=only_changed):
            pct = "-" if d.pct is None else f"{d.pct:+.2f}%"
            rows.append((d.name, fmt(d.a), fmt(d.b), fmt(d.delta), pct))
        if len(rows) == 1:
            rows.append(("(no metrics)", "-", "-", "-", "-"))
        widths = [max(len(r[i]) for r in rows) for i in range(5)]
        lines = []
        for i, r in enumerate(rows):
            lines.append(
                "  ".join(
                    cell.ljust(w) if j == 0 else cell.rjust(w)
                    for j, (cell, w) in enumerate(zip(r, widths))
                ).rstrip()
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)
