"""Metrics registry: counters, gauges and fixed-bucket histograms.

A small Prometheus-style metric model for the simulators' telemetry:

* a metric *family* has a name, help text and a tuple of label names;
* ``family.labels(design="fig5-feedback", kind="op")`` returns (and
  caches) the child time series for one label-value combination;
* :meth:`MetricsRegistry.to_prometheus` renders the whole registry in
  the Prometheus text exposition format, and
  :meth:`MetricsRegistry.snapshot` in a JSON-able dict form that
  :func:`repro.io.save_run` can persist next to a run report.

:class:`MetricsSink` adapts the model to the trace bus: subscribe one to
a machine's :class:`~repro.systolic.fabric.EventBus` and every
``op``/``shift``/``broadcast``/``io``/``phase`` event is folded into
per-design, per-PE, per-kind series (see the metric naming scheme in
``docs/observability.md``).
"""

from __future__ import annotations

import bisect
import re
from typing import Any, Iterable

from ..systolic.fabric import CELL_KINDS, TraceEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSink",
    "DEFAULT_TICK_BUCKETS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default fixed buckets for tick-valued histograms (powers of 4, so the
#: exposition stays compact even for long schedules).
DEFAULT_TICK_BUCKETS = (4, 16, 64, 256, 1024, 4096, 16384)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    ``buckets`` are the (strictly increasing) upper bounds; an implicit
    ``+Inf`` bucket catches the tail, as in Prometheus.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]):
        self.buckets = buckets
        self.bucket_counts = [0] * (len(buckets) + 1)  # [+Inf] last
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[str, int]]:
        """Cumulative ``(le, count)`` pairs, Prometheus-style."""
        out: list[tuple[str, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            running += n
            out.append((_format_number(bound), running))
        out.append(("+Inf", running + self.bucket_counts[-1]))
        return out


_KIND_CTOR = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric with a fixed label schema and per-label children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_TICK_BUCKETS,
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        if kind not in _KIND_CTOR:
            raise ValueError(f"unknown metric kind {kind!r}")
        if kind == "histogram":
            if not buckets or list(buckets) != sorted(set(buckets)):
                raise ValueError("histogram buckets must be strictly increasing")
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = tuple(label_names)
        self.buckets = tuple(float(b) for b in buckets)
        self._children: dict[tuple[str, ...], Any] = {}

    def labels(self, **label_values: Any):
        """The child series for one label-value combination (cached)."""
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[k]) for k in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = (
                Histogram(self.buckets)
                if self.kind == "histogram"
                else _KIND_CTOR[self.kind]()
            )
            self._children[key] = child
        return child

    @property
    def children(self) -> dict[tuple[str, ...], Any]:
        return dict(self._children)


def _format_number(v: float) -> str:
    """Render floats that hold integers without the trailing ``.0``."""
    return str(int(v)) if float(v).is_integer() else repr(float(v))


def _label_str(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in zip(names, values))
    return "{" + inner + "}"


class MetricsRegistry:
    """Holds metric families; renders Prometheus text and JSON snapshots."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help_text: str,
        label_names: Iterable[str],
        buckets: tuple[float, ...] = DEFAULT_TICK_BUCKETS,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} already registered with a different schema"
                )
            return existing
        family = MetricFamily(name, kind, help_text, tuple(label_names), buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help_text: str = "", label_names: Iterable[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help_text, label_names)

    def gauge(
        self, name: str, help_text: str = "", label_names: Iterable[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help_text, label_names)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        label_names: Iterable[str] = (),
        buckets: tuple[float, ...] = DEFAULT_TICK_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, "histogram", help_text, label_names, buckets)

    def families(self) -> tuple[MetricFamily, ...]:
        return tuple(self._families[name] for name in sorted(self._families))

    # -- exposition ------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-able dict of every series (labels flattened to strings)."""
        out: dict[str, Any] = {"kind": "metrics_snapshot", "metrics": {}}
        for family in self.families():
            series = []
            for values, child in sorted(family.children.items()):
                labels = dict(zip(family.label_names, values))
                if family.kind == "histogram":
                    series.append(
                        {
                            "labels": labels,
                            "buckets": [
                                {"le": le, "count": n} for le, n in child.cumulative()
                            ],
                            "sum": child.sum,
                            "count": child.count,
                        }
                    )
                else:
                    series.append({"labels": labels, "value": child.value})
            out["metrics"][family.name] = {
                "type": family.kind,
                "help": family.help,
                "series": series,
            }
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in sorted(family.children.items()):
                labels = _label_str(family.label_names, values)
                if family.kind == "histogram":
                    for le, n in child.cumulative():
                        bucket_labels = _label_str(
                            family.label_names + ("le",), values + (le,)
                        )
                        lines.append(f"{family.name}_bucket{bucket_labels} {n}")
                    lines.append(
                        f"{family.name}_sum{labels} {_format_number(child.sum)}"
                    )
                    lines.append(f"{family.name}_count{labels} {child.count}")
                else:
                    lines.append(
                        f"{family.name}{labels} {_format_number(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


class MetricsSink:
    """Trace-bus sink feeding a :class:`MetricsRegistry`.

    One sink instruments one run; ``design`` stamps every series so
    snapshots from different arrays can be merged into one registry.
    The naming scheme (documented in ``docs/observability.md``):

    * ``repro_trace_events_total{design,kind}`` — every bus event;
    * ``repro_pe_events_total{design,pe,kind}`` — PE-occupying events
      (``op``/``shift``/``broadcast`` with a real PE index);
    * ``repro_io_events_total{design,direction}`` — port transfers
      (direction parsed from the ``in:``/``out:`` label convention);
    * ``repro_phase_transitions_total{design}`` and
      ``repro_current_phase{design}`` — control-phase progress;
    * ``repro_tick_high_water{design}`` — largest tick observed;
    * ``repro_event_tick{design,kind}`` — fixed-bucket histogram of the
      tick each event landed on (the space-time *when*).
    """

    def __init__(self, design: str, registry: MetricsRegistry | None = None):
        self.design = design
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self._events = r.counter(
            "repro_trace_events_total", "Trace-bus events seen", ("design", "kind")
        )
        self._pe_events = r.counter(
            "repro_pe_events_total",
            "PE-occupying cell events",
            ("design", "pe", "kind"),
        )
        self._io = r.counter(
            "repro_io_events_total", "I/O port transfer events", ("design", "direction")
        )
        self._phases = r.counter(
            "repro_phase_transitions_total", "Control-phase changes", ("design",)
        )
        self._phase_gauge = r.gauge(
            "repro_current_phase", "Phase index of the latest phase event", ("design",)
        )
        self._tick_gauge = r.gauge(
            "repro_tick_high_water", "Largest event tick observed", ("design",)
        )
        self._tick_hist = r.histogram(
            "repro_event_tick", "Tick each event landed on", ("design", "kind")
        )

    def __call__(self, event: TraceEvent) -> None:
        design = self.design
        self._events.labels(design=design, kind=event.kind).inc()
        self._tick_hist.labels(design=design, kind=event.kind).observe(event.tick)
        gauge = self._tick_gauge.labels(design=design)
        if event.tick > gauge.value:
            gauge.set(event.tick)
        if event.kind in CELL_KINDS and event.pe >= 0:
            self._pe_events.labels(
                design=design, pe=event.pe, kind=event.kind
            ).inc()
        elif event.kind == "io":
            direction = event.label.split(":", 1)[0]
            if direction not in ("in", "out"):
                direction = "io"
            self._io.labels(design=design, direction=direction).inc()
        elif event.kind == "phase":
            self._phases.labels(design=design).inc()
            self._phase_gauge.labels(design=design).set(event.phase)
