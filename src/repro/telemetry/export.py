"""Chrome-trace / Perfetto export of typed trace-event streams.

:func:`chrome_trace` converts the machine's :class:`TraceEvent` stream
into the Chrome trace-event JSON format (the ``{"traceEvents": [...]}``
object form), loadable in ``chrome://tracing`` and https://ui.perfetto.dev:

* each PE gets its own thread lane (``"M"`` thread-name metadata), and
  every ``op``/``shift``/``broadcast`` cell becomes a one-tick ``"X"``
  complete event on that lane, categorized by kind;
* I/O port transfers (and broadcasts with no PE) land as ``"i"``
  instant events on a dedicated ``array`` lane;
* control phases become ``"b"``/``"e"`` async spans, so the Fig. 3/4
  overlapped phase structure shows up as a band above the PE lanes.

One simulated tick is rendered as :data:`TICK_USECS` microseconds so a
schedule of a few hundred ticks zooms comfortably.
:func:`validate_chrome_trace` is the schema check CI runs against the
exported file.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

from ..systolic.fabric import CELL_KINDS, TraceEvent

__all__ = [
    "TICK_USECS",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Microseconds of trace time per simulated tick.
TICK_USECS = 1000

_PID = 1


def _ts(tick: int) -> int:
    """Trace timestamp (µs) of a 1-based tick's leading edge."""
    return (tick - 1) * TICK_USECS


def chrome_trace(
    events: Iterable[TraceEvent], *, design: str = "systolic-array"
) -> dict[str, Any]:
    """Chrome trace-event object for one run's event stream."""
    events = list(events)
    pes = sorted({e.pe for e in events if e.pe >= 0})
    num_pes = (pes[-1] + 1) if pes else 0
    array_tid = num_pes  # lane after the last PE for array-level events
    last_tick = max((e.tick for e in events), default=0)

    out: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": 0,
            "args": {"name": design},
        }
    ]
    for pe in range(num_pes):
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": pe,
                "args": {"name": f"PE{pe + 1}"},
            }
        )
    out.append(
        {
            "ph": "M",
            "name": "thread_name",
            "pid": _PID,
            "tid": array_tid,
            "args": {"name": "array"},
        }
    )

    phase_marks = [e for e in events if e.kind == "phase"]
    for i, mark in enumerate(phase_marks):
        end_tick = (
            phase_marks[i + 1].tick if i + 1 < len(phase_marks) else last_tick + 1
        )
        span = {
            "cat": "phase",
            "name": mark.label,
            "id": mark.phase,
            "pid": _PID,
            "args": {"phase": mark.phase},
        }
        out.append({**span, "ph": "b", "ts": _ts(mark.tick)})
        out.append({**span, "ph": "e", "ts": _ts(end_tick)})

    for e in events:
        if e.kind in CELL_KINDS and e.pe >= 0:
            out.append(
                {
                    "ph": "X",
                    "cat": e.kind,
                    "name": e.label,
                    "ts": _ts(e.tick),
                    "dur": TICK_USECS,
                    "pid": _PID,
                    "tid": e.pe,
                    "args": {"tick": e.tick, "phase": e.phase},
                }
            )
        elif e.kind == "phase":
            continue  # already rendered as async spans
        else:  # io, and broadcasts carrying no PE index
            out.append(
                {
                    "ph": "i",
                    "cat": e.kind,
                    "name": e.label,
                    "ts": _ts(e.tick),
                    "pid": _PID,
                    "tid": array_tid,
                    "s": "t",
                    "args": {"tick": e.tick, "phase": e.phase},
                }
            )

    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | pathlib.Path,
    events: Iterable[TraceEvent],
    *,
    design: str = "systolic-array",
) -> dict[str, Any]:
    """Write :func:`chrome_trace` output to ``path``; returns the object."""
    data = chrome_trace(events, design=design)
    pathlib.Path(path).write_text(json.dumps(data, indent=2) + "\n")
    return data


def validate_chrome_trace(data: dict[str, Any]) -> dict[str, int]:
    """Schema-check a Chrome-trace object; raise ``ValueError`` if malformed.

    Verifies the object form, the per-event required keys for the phase
    types this exporter emits, and that every duration/instant event
    targets a named lane.  Returns summary counts
    ``{"events", "lanes", "phases"}`` for CI logs.
    """
    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        raise ValueError("not a Chrome trace: missing traceEvents list")
    lanes: set[tuple[int, int]] = set()
    named_lanes: set[tuple[int, int]] = set()
    phases: set[int] = set()
    open_spans: dict[int, int] = {}
    n_events = 0
    for i, ev in enumerate(data["traceEvents"]):
        if not isinstance(ev, dict) or "ph" not in ev:
            raise ValueError(f"traceEvents[{i}]: not an event object")
        ph = ev["ph"]
        if ph == "M":
            if ev.get("name") == "thread_name":
                named_lanes.add((ev["pid"], ev["tid"]))
            continue
        n_events += 1
        if ph == "X":
            for key in ("ts", "dur", "pid", "tid", "name"):
                if key not in ev:
                    raise ValueError(f"traceEvents[{i}]: X event missing {key!r}")
            if ev["dur"] <= 0:
                raise ValueError(f"traceEvents[{i}]: non-positive duration")
            lanes.add((ev["pid"], ev["tid"]))
        elif ph == "i":
            for key in ("ts", "pid", "tid", "name"):
                if key not in ev:
                    raise ValueError(f"traceEvents[{i}]: i event missing {key!r}")
            lanes.add((ev["pid"], ev["tid"]))
        elif ph == "b":
            if "id" not in ev or "ts" not in ev:
                raise ValueError(f"traceEvents[{i}]: b event missing id/ts")
            phases.add(ev["id"])
            open_spans[ev["id"]] = open_spans.get(ev["id"], 0) + 1
        elif ph == "e":
            if "id" not in ev:
                raise ValueError(f"traceEvents[{i}]: e event missing id")
            if open_spans.get(ev["id"], 0) <= 0:
                raise ValueError(f"traceEvents[{i}]: e event with no open b span")
            open_spans[ev["id"]] -= 1
        else:
            raise ValueError(f"traceEvents[{i}]: unexpected phase type {ph!r}")
    still_open = [k for k, v in open_spans.items() if v]
    if still_open:
        raise ValueError(f"unterminated async phase spans: {sorted(still_open)}")
    unnamed = lanes - named_lanes
    if unnamed:
        raise ValueError(f"events target unnamed lanes: {sorted(unnamed)}")
    return {"events": n_events, "lanes": len(named_lanes), "phases": len(phases)}
