"""Observability over the systolic trace bus.

Everything in this package consumes the typed
:class:`~repro.systolic.fabric.TraceEvent` stream the PR-1 machine core
publishes (or, for the vectorized backends, wall-clock timing spans) —
no simulator internals are reached into, and nothing here costs a
traced run anything unless a sink is actually subscribed:

* :mod:`~repro.telemetry.metrics` — Prometheus-style
  :class:`MetricsRegistry` (counters / gauges / fixed-bucket
  histograms) fed by a :class:`MetricsSink`;
* :mod:`~repro.telemetry.timeline` — :class:`TimelineSink` per-PE
  busy/idle timelines, ASCII occupancy heatmaps, and measured-vs-paper
  PU breakdowns;
* :mod:`~repro.telemetry.export` — Chrome-trace / Perfetto JSON
  export plus the schema check CI runs on it;
* :mod:`~repro.telemetry.compare` — :class:`RunComparison` per-metric
  deltas between two runs;
* :mod:`~repro.telemetry.timing` — ``perf_counter_ns`` spans so rtl
  and fast backends yield comparable wall-clock telemetry.

See ``docs/observability.md`` for the naming scheme and CLI workflows
(``python -m repro trace`` / ``compare``).
"""

from .compare import MetricDelta, RunComparison
from .export import chrome_trace, validate_chrome_trace, write_chrome_trace
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    MetricsSink,
)
from .timeline import PhaseSpan, TimelineSink, paper_reference_pu
from .timing import TimingCollector, active_collector, collect_timings, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricDelta",
    "MetricFamily",
    "MetricsRegistry",
    "MetricsSink",
    "PhaseSpan",
    "RunComparison",
    "TimelineSink",
    "TimingCollector",
    "active_collector",
    "chrome_trace",
    "collect_timings",
    "paper_reference_pu",
    "span",
    "validate_chrome_trace",
    "write_chrome_trace",
]
