"""Per-PE busy/idle timelines folded from the trace bus.

The paper's utilization claims (eq. 9, the Fig. 5 PU ≈ 1 argument) are
statements about *where in space-time the idle cycles live*.  A
:class:`TimelineSink` subscribed to a machine's event bus reconstructs
exactly that view for any of the array designs:

* **busy ticks** — ticks a PE spent in a shift-multiply-accumulate slot
  (``op`` events; one per busy tick by the wiring invariant the test
  suite enforces), matching :attr:`RunReport.pe_busy_ticks` exactly;
* **occupied ticks** — busy ticks plus pure transit (``shift``) and bus
  (``broadcast``) cells, the cells a space-time diagram draws;
* **phases** — the control-phase spans (``phase`` events) that the
  Fig. 3/4 overlapped schedule interleaves;
* **renderings** — an ASCII space-time occupancy heatmap that scales to
  long schedules by binning ticks (generalizing
  :mod:`repro.systolic.spacetime`, which draws one labelled column per
  tick), and a measured-vs-paper PU breakdown per phase.

The sink stores raw events and derives everything lazily, so it adds
one list-append per event while the simulation runs.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Iterable

from ..systolic.fabric import CELL_KINDS, RunReport, TraceEvent

__all__ = ["PhaseSpan", "TimelineSink", "paper_reference_pu"]

#: Default character ramp for occupancy heatmaps (space = idle).
HEAT_RAMP = " .:-=+*#%@"


@dataclasses.dataclass(frozen=True)
class PhaseSpan:
    """One control phase: index, label, and 1-based [start, end] ticks."""

    index: int
    label: str
    start: int
    end: int  # inclusive; the last phase ends at the schedule's last tick

    @property
    def length(self) -> int:
        return max(self.end - self.start + 1, 0)


class TimelineSink:
    """Collecting sink that folds bus events into per-PE timelines."""

    def __init__(self, design: str | None = None):
        self.design = design
        self._events: list[TraceEvent] = []

    def __call__(self, event: TraceEvent) -> None:
        self._events.append(event)

    # -- raw access ------------------------------------------------------
    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Ingest a pre-recorded event stream (e.g. from a saved run)."""
        self._events.extend(events)

    # -- derived geometry ------------------------------------------------
    @property
    def num_pes(self) -> int:
        """1 + the largest PE index seen on a cell event (0 when none)."""
        pes = [e.pe for e in self._events if e.pe >= 0]
        return max(pes) + 1 if pes else 0

    @property
    def last_tick(self) -> int:
        """The largest tick on any event (0 when empty)."""
        return max((e.tick for e in self._events), default=0)

    def _cells(self, kinds: frozenset[str]) -> set[tuple[int, int]]:
        return {
            (e.pe, e.tick)
            for e in self._events
            if e.kind in kinds and e.pe >= 0
        }

    def busy_cells(self) -> set[tuple[int, int]]:
        """(pe, tick) pairs where a PE performed work (``op`` events)."""
        return self._cells(frozenset({"op"}))

    def occupied_cells(self) -> set[tuple[int, int]]:
        """(pe, tick) pairs where a PE held any datum (all cell kinds)."""
        return self._cells(CELL_KINDS)

    def busy_ticks_per_pe(self, num_pes: int | None = None) -> tuple[int, ...]:
        """Busy-tick count per PE; equals ``RunReport.pe_busy_ticks``."""
        n = self.num_pes if num_pes is None else num_pes
        counts = [0] * n
        for pe, _tick in self.busy_cells():
            if pe < n:
                counts[pe] += 1
        return tuple(counts)

    def intervals(self, pe: int) -> list[tuple[int, int]]:
        """Merged [start, end] occupied intervals (inclusive) of one PE."""
        ticks = sorted(t for p, t in self.occupied_cells() if p == pe)
        out: list[tuple[int, int]] = []
        for t in ticks:
            if out and t == out[-1][1] + 1:
                out[-1] = (out[-1][0], t)
            else:
                out.append((t, t))
        return out

    def busy_fraction(
        self, wall_ticks: int | None = None, num_pes: int | None = None
    ) -> float:
        """Mean fraction of wall ticks each PE spent busy (0.0 if empty)."""
        n = self.num_pes if num_pes is None else num_pes
        ticks = self.last_tick if wall_ticks is None else wall_ticks
        denom = n * ticks
        return len(self.busy_cells()) / denom if denom else 0.0

    # -- phases ----------------------------------------------------------
    def phases(self, total_ticks: int | None = None) -> list[PhaseSpan]:
        """Phase spans from ``phase`` events; empty for unphased designs.

        Each span ends one tick before the next phase starts; the last
        spans to ``total_ticks`` (default: the last event tick).
        """
        marks = [e for e in self._events if e.kind == "phase"]
        end_of_schedule = self.last_tick if total_ticks is None else total_ticks
        spans: list[PhaseSpan] = []
        for i, e in enumerate(marks):
            end = marks[i + 1].tick - 1 if i + 1 < len(marks) else end_of_schedule
            spans.append(PhaseSpan(index=e.phase, label=e.label, start=e.tick, end=end))
        return spans

    def phase_table(
        self,
        *,
        iterations: int | None = None,
        num_pes: int | None = None,
    ) -> list[dict[str, Any]]:
        """Per-phase occupancy rows (busy ticks grouped by event phase).

        Busy events are attributed to the phase *stamped on the event*
        (not the tick window), so the Fig. 3 overlapped schedule — where
        a phase's skewed tail spills into the next phase's window —
        still accounts each operation to the phase that issued it.
        Designs without phase structure get one implicit phase 0.
        """
        n = self.num_pes if num_pes is None else num_pes
        total = self.last_tick if iterations is None else iterations
        spans = self.phases(total_ticks=total)
        if not spans:
            spans = [PhaseSpan(index=0, label="run", start=1, end=total)]
        # Deduplicate by (pe, tick): several op events can land on one
        # busy tick (e.g. the Fig. 5 F₀ sweep folds m alternatives per
        # tick), and "busy ticks" must match the RunReport accounting.
        busy_by_phase: dict[int, set[tuple[int, int]]] = {}
        for e in self._events:
            if e.kind == "op" and e.pe >= 0:
                busy_by_phase.setdefault(e.phase, set()).add((e.pe, e.tick))
        rows: list[dict[str, Any]] = []
        for span in spans:
            busy = len(busy_by_phase.get(span.index, ()))
            slots = span.length * n
            rows.append(
                {
                    "phase": span.index,
                    "label": span.label,
                    "start": span.start,
                    "length": span.length,
                    "busy_ticks": busy,
                    "slots": slots,
                    "occupancy": busy / slots if slots else 0.0,
                }
            )
        return rows

    # -- PU accounting ---------------------------------------------------
    def pu_breakdown(self, report: RunReport | None = None) -> dict[str, Any]:
        """Measured-vs-paper utilization summary.

        With a :class:`RunReport` the breakdown includes the serial-ops
        PU (the paper's definition) and the matching closed form when
        the design has one (eq. 9 for the Fig. 3/4 arrays, the Fig. 5
        expression for the feedback array); without one it reports the
        timeline-only occupancy figures.
        """
        num_pes = report.num_pes if report is not None else self.num_pes
        iterations = report.iterations if report is not None else self.last_tick
        table = self.phase_table(iterations=iterations, num_pes=num_pes)
        out: dict[str, Any] = {
            "design": report.design if report is not None else self.design,
            "num_pes": num_pes,
            "iterations": iterations,
            "busy_ticks": len(self.busy_cells()),
            "occupied_ticks": len(self.occupied_cells()),
            "phases": table,
        }
        denom = iterations * num_pes
        out["cell_pu"] = out["busy_ticks"] / denom if denom else 0.0
        if report is not None:
            out["measured_pu"] = report.processor_utilization
            out["busy_fraction"] = self.busy_fraction(
                wall_ticks=report.wall_ticks, num_pes=num_pes
            )
            out.update(paper_reference_pu(report, num_phases=len(self.phases())))
        return out

    # -- renderings ------------------------------------------------------
    def render_spacetime(
        self, num_pes: int | None = None, num_ticks: int | None = None
    ) -> str:
        """The classic labelled space-time diagram (one column per tick)."""
        from ..systolic.spacetime import render_spacetime

        n = self.num_pes if num_pes is None else num_pes
        ticks = self.last_tick if num_ticks is None else num_ticks
        return render_spacetime(self._events, n, ticks)

    def render_heatmap(
        self,
        *,
        num_pes: int | None = None,
        num_ticks: int | None = None,
        max_width: int = 72,
        ramp: str = HEAT_RAMP,
    ) -> str:
        """ASCII space-time occupancy heatmap (PEs × binned ticks).

        Unlike the labelled diagram, long schedules stay readable: ticks
        are folded into at most ``max_width`` columns and each cell's
        character encodes the fraction of its bin the PE spent occupied
        (idle = ``ramp[0]``, fully occupied = ``ramp[-1]``).  A ruler
        row marks where each control phase begins.
        """
        n = self.num_pes if num_pes is None else num_pes
        ticks = max(self.last_tick if num_ticks is None else num_ticks, 1)
        if n < 1:
            return "(no PE activity traced)"
        if max_width < 1:
            raise ValueError("max_width must be positive")
        bin_size = math.ceil(ticks / max_width)
        cols = math.ceil(ticks / bin_size)
        occupied = self.occupied_cells()
        label_w = len(f"P{n}")
        lines = [
            f"space-time occupancy: {n} PEs x {ticks} ticks "
            f"({bin_size} tick{'s' if bin_size > 1 else ''}/col, ramp {ramp!r})"
        ]
        spans = self.phases(total_ticks=ticks)
        if spans:
            ruler = [" "] * cols
            for span in spans:
                col = min((span.start - 1) // bin_size, cols - 1)
                ruler[col] = "|"
            lines.append(" " * (label_w + 1) + "".join(ruler))
        for pe in range(n):
            row = []
            for c in range(cols):
                lo, hi = c * bin_size + 1, min((c + 1) * bin_size, ticks)
                hits = sum(1 for t in range(lo, hi + 1) if (pe, t) in occupied)
                frac = hits / (hi - lo + 1)
                level = 0 if hits == 0 else max(1, round(frac * (len(ramp) - 1)))
                row.append(ramp[level])
            lines.append(f"P{pe + 1}".ljust(label_w) + " " + "".join(row))
        if spans:
            lines.append(
                "phases: "
                + "  ".join(f"|{s.index}:{s.label}@t{s.start}" for s in spans)
            )
        return "\n".join(lines)

    # -- persistence -----------------------------------------------------
    def to_json(self, report: RunReport | None = None) -> dict[str, Any]:
        """JSON-able timeline record (per-PE intervals, phases, busy counts)."""
        num_pes = report.num_pes if report is not None else self.num_pes
        busy = self.busy_ticks_per_pe(num_pes)
        out: dict[str, Any] = {
            "kind": "telemetry_timeline",
            "design": report.design if report is not None else self.design,
            "num_pes": num_pes,
            "num_ticks": self.last_tick,
            "phases": [dataclasses.asdict(s) for s in self.phases()],
            "pes": [
                {
                    "pe": pe,
                    "busy_ticks": busy[pe] if pe < len(busy) else 0,
                    "intervals": [list(iv) for iv in self.intervals(pe)],
                }
                for pe in range(num_pes)
            ],
        }
        if report is not None:
            out["pu"] = self.pu_breakdown(report)
        return out


def paper_reference_pu(report: RunReport, *, num_phases: int) -> dict[str, float]:
    """The paper's closed-form PU for designs that have one.

    Returns ``paper_pu`` (the formula as printed) and, for the Fig. 3/4
    arrays, ``paper_pu_measured_convention`` — eq. (9) rescaled by the
    ``N/(N−1)`` iteration-convention factor (the paper counts ``N·m``
    iterations where the walkthrough's schedule runs ``(N−1)·m``; see
    ``benchmarks/bench_eq9_pipeline_pu.py``), which is what the
    simulators measure exactly.  Empty for designs without a quoted form.
    """
    m = report.num_pes
    if report.design in ("fig3-pipelined", "fig4-broadcast") and num_phases >= 2 and m:
        n_layers = num_phases + 1
        # Eq. (9) is quoted for the single-source/sink shape only (stage
        # sizes [1, m, …, m, 1]), whose uniprocessor count is
        # (N−2)·m² + m; a different serial count means a different graph
        # shape, for which the paper states no closed form.
        if report.serial_ops == (n_layers - 2) * m * m + m:
            from ..core.metrics import eq9_pu

            paper = eq9_pu(n_layers, m)
            return {
                "paper_pu": paper,
                "paper_pu_measured_convention": paper * n_layers / (n_layers - 1),
            }
        return {}
    if report.design == "fig5-feedback" and m and report.iterations % m == 0:
        from ..systolic.feedback_array import feedback_pu

        n_stages = report.iterations // m - 1
        if n_stages >= 1:
            return {"paper_pu": feedback_pu(n_stages, m)}
    return {}
