"""PROP1 — Asymptotic processor utilization (Proposition 1, eq. 17).

Paper artifact: for k(N) systolic arrays multiplying N matrices,

    lim PU(k, N) = 0            if c∞ = lim k/(N/log₂N) = ∞,
                 = 1/(1 + c∞)   if 0 < c∞ < ∞,
                 = 1            if c∞ = 0,

with the worked example k = √N ⇒ c∞ = 0 ⇒ PU → 1.

Reproduced here: PU(k(N), N) series under five growth schedules,
checked against the predicted limits.
"""

from __future__ import annotations

import math

import pytest

from repro.dnc import asymptotic_pu, asymptotic_pu_limit
from _benchutil import print_table

N_VALUES = [2**i for i in range(10, 24, 2)]

REGIMES = [
    ("sqrt(N)          (c=0)", lambda n: int(math.sqrt(n)), 0.0),
    ("N/log2(N)        (c=1)", lambda n: max(1, int(n / math.log2(n))), 1.0),
    ("2N/log2(N)       (c=2)", lambda n: max(1, int(2 * n / math.log2(n))), 2.0),
    ("N/(2 log2(N))  (c=1/2)", lambda n: max(1, int(n / (2 * math.log2(n)))), 0.5),
    ("N                (c=inf)", lambda n: n, float("inf")),
]


def compute_series():
    return [
        (name, asymptotic_pu(fn, N_VALUES), asymptotic_pu_limit(c))
        for name, fn, c in REGIMES
    ]


def test_prop1_limits(benchmark):
    series = benchmark(compute_series)
    rows = []
    for name, pts, limit in series:
        rows.append(
            [name]
            + [f"{pu:.3f}" for _n, pu in pts]
            + [f"{limit:.3f}"]
        )
    print_table(
        "Proposition 1: PU(k(N), N) under c∞ regimes",
        ["k(N)"] + [f"N=2^{int(math.log2(n))}" for n in N_VALUES] + ["limit"],
        rows,
    )
    for name, pts, limit in series:
        final = pts[-1][1]
        first = pts[0][1]
        # Convergence toward the eq.-(17) limit...
        assert abs(final - limit) < 0.12, name
        # ...and monotone movement toward it from the small-N end.
        assert abs(final - limit) <= abs(first - limit) + 1e-9, name


def test_prop1_sqrt_example(benchmark):
    # The paper's worked example: k = sqrt(N) gives PU -> 1.
    pts = benchmark(
        asymptotic_pu, lambda n: int(math.sqrt(n)), [2**i for i in range(12, 26, 2)]
    )
    assert pts[-1][1] > 0.98


def test_prop1_ordering(benchmark):
    # At fixed N, larger c∞ regimes utilize processors less.
    def at_fixed_n():
        n = 1 << 20
        return [fn(n) and asymptotic_pu(fn, [n])[0][1] for _name, fn, _c in REGIMES]

    pu = benchmark(at_fixed_n)
    # sqrt(N) > N/2log > N/log > 2N/log > N regimes.
    assert pu[0] > pu[3] > pu[1] > pu[2] > pu[4]
