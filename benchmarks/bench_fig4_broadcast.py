"""FIG4 — The broadcast systolic array schedule (paper Figure 4).

Paper artifact: the same matrix-string evaluation as Fig. 3 but with all
input matrices fed in one format, a broadcast bus for the moving vector,
and S-register feedback under MOVE/FIRST; same ``m`` iterations per
product and the same eq.-(9) utilization, with zero fill/drain skew.

Reproduced here: schedule equality with the Fig. 3 design, the zero-skew
wall clock, and the bus/port traffic comparison between the two designs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import solve_backward
from repro.graphs import fig1a_graph, single_source_sink
from repro.systolic import BroadcastMatrixStringArray, PipelinedMatrixStringArray
from _benchutil import print_table

SWEEP = [(4, 3), (8, 4), (16, 8), (32, 8)]


def test_fig4_paper_walkthrough(benchmark):
    arr = BroadcastMatrixStringArray()
    res = benchmark(arr.run_graph, fig1a_graph())
    assert float(res.value) == 6.0
    assert res.report.iterations == 9
    assert res.report.wall_ticks == 9  # broadcast: no skew
    print(
        f"\nFig. 4 walkthrough: optimum={float(res.value)}, "
        f"iterations={res.report.iterations}, wall={res.report.wall_ticks} "
        f"(no fill/drain: the bus reaches every PE at once)"
    )


def test_fig4_vs_fig3_traffic(benchmark, rng):
    def run_all():
        rows = []
        for n_layers, m in SWEEP:
            g = single_source_sink(rng, n_layers - 1, m)
            rb = BroadcastMatrixStringArray().run_graph(g)
            rp = PipelinedMatrixStringArray().run_graph(g)
            assert np.isclose(float(rb.value), float(rp.value))
            rows.append(
                [
                    n_layers,
                    m,
                    rb.report.iterations,
                    rp.report.iterations,
                    rb.report.wall_ticks,
                    rp.report.wall_ticks,
                    rb.report.broadcast_words,
                    rp.report.broadcast_words,
                ]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "Fig. 4 vs Fig. 3: same schedule, different data movement",
        ["N", "m", "it_f4", "it_f3", "wall_f4", "wall_f3", "bus_f4", "bus_f3"],
        rows,
    )
    for (n_layers, m), row in zip(SWEEP, rows):
        assert row[2] == row[3]  # identical iteration counts
        assert row[4] == row[5] - (m - 1)  # fig4 saves the skew
        assert row[6] == row[2]  # one bus word per iteration
        assert row[7] == 0  # fig3 uses no bus at all


def test_fig4_correctness_sweep(benchmark, rng):
    arr = BroadcastMatrixStringArray()

    def run_all():
        checks = []
        for n_layers, m in SWEEP:
            g = single_source_sink(rng, n_layers - 1, m)
            res = arr.run_graph(g)
            checks.append((float(res.value), solve_backward(g).optimum))
        return checks

    for got, want in benchmark(run_all):
        assert np.isclose(got, want)
