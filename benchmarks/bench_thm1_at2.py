"""THM1 — The AT² lower bound for divide-and-conquer products (Theorem 1).

Paper artifact: ``S(N)·T²(N) ≥ Θ(N·log₂N)·T₁²`` with equality when
``S(N) = Θ(N/log₂N)`` — the granularity result that also fixes the
Figure-6 optimum.

Reproduced here: the S·T² surface over processor-count regimes at
several N, showing the Θ(N/log₂N) column attains the bound order while
under- and over-provisioned regimes diverge polynomially/logarithmically.
"""

from __future__ import annotations

import math

import pytest

from repro.dnc import at2_lower_bound, at2_surface, optimal_granularity
from _benchutil import print_table

N_VALUES = [2**i for i in (10, 14, 18, 22)]

REGIMES = [
    ("S=1", lambda n: 1),
    ("S=sqrt(N)", lambda n: max(1, int(math.sqrt(n)))),
    ("S=N/log2N", lambda n: max(1, int(optimal_granularity(n)))),
    ("S=N/4", lambda n: max(1, n // 4)),
    ("S=N", lambda n: n),
]


def compute_surface():
    out = []
    for name, fn in REGIMES:
        row = [name]
        for n in N_VALUES:
            ratio = at2_surface(n, fn(n)) / at2_lower_bound(n)
            row.append(f"{ratio:.2f}")
        out.append(row)
    return out


def test_thm1_surface(benchmark):
    rows = benchmark(compute_surface)
    print_table(
        "Theorem 1: S*T^2 / (N*log2(N)) across granularity regimes",
        ["regime"] + [f"N=2^{int(math.log2(n))}" for n in N_VALUES],
        rows,
    )
    by_name = {r[0]: [float(x) for x in r[1:]] for r in rows}
    # The optimal regime stays within a constant of the bound...
    assert max(by_name["S=N/log2N"]) < 8.0
    # ...while S=1 diverges like N/logN...
    assert by_name["S=1"][-1] > by_name["S=1"][0] * 100
    # ...and S=N diverges like log N.
    assert by_name["S=N"][-1] > by_name["S=N"][0]
    # At the largest N, the optimal column beats every other regime.
    last = {name: vals[-1] for name, vals in by_name.items()}
    assert last["S=N/log2N"] == min(last.values())


def test_thm1_minimum_location(benchmark):
    # Scan S exhaustively at moderate N: the argmin of S*T^2 sits within
    # a small factor of N/log2N.
    n = 1 << 14

    def scan():
        best_s, best_v = 1, float("inf")
        for s in range(1, n + 1, 7):
            v = at2_surface(n, s)
            if v < best_v:
                best_s, best_v = s, v
        return best_s

    best_s = benchmark(scan)
    opt = optimal_granularity(n)
    assert opt / 4 <= best_s <= opt * 4
