"""PROP2/PROP3 — Matrix-chain ordering schedules (Section 6.2).

Paper artifacts:

* Proposition 2: the broadcast-bus AND/OR mapping finds the optimal
  multiplication order of N matrices in ``T_d(N) = N`` steps (eq. 42).
* Proposition 3: the serialized planar (systolic, Figure 8 /
  Guibas-style) mapping needs ``T_p(N) = 2N`` steps (eq. 43) — the
  serialization buys planar interconnect at exactly 2x delay.

Reproduced here: both schedules measured on real instances across N,
checked against the recurrences and closed forms, plus the dummy-node
hardware overhead of the Figure-8 serialization.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.andor import matrix_chain_andor, serialize
from repro.dp import solve_matrix_chain
from repro.systolic import (
    BroadcastParenthesizer,
    SystolicParenthesizer,
    t_d_recurrence,
    t_p_recurrence,
)
from _benchutil import print_table

N_SWEEP = [2, 4, 8, 12, 16, 24, 32]


def test_prop23_schedule_lengths(benchmark, rng):
    def run_all():
        rows = []
        for n in N_SWEEP:
            dims = list(rng.integers(1, 50, size=n + 1))
            ref = solve_matrix_chain(dims)
            b = BroadcastParenthesizer().run(dims)
            s = SystolicParenthesizer().run(dims)
            assert b.order.cost == ref.cost
            assert s.order.cost == ref.cost
            rows.append(
                [n, b.steps, t_d_recurrence(n), s.steps, t_p_recurrence(n), b.num_processors]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "Props. 2-3: parenthesization schedule lengths",
        ["N", "T_d meas", "T_d(N)=N", "T_p meas", "T_p(N)=2N", "processors"],
        rows,
    )
    for n, td, td_rec, tp, tp_rec, _procs in rows:
        assert td == td_rec == n
        assert tp == tp_rec == 2 * n


def test_prop23_crossover_against_sequential(benchmark, rng):
    # Shape claim: sequential DP costs Θ(N³) operations; the arrays run
    # in Θ(N) / Θ(2N) steps on Θ(N²) processors — the speedup factor
    # grows quadratically.
    def run_all():
        rows = []
        for n in N_SWEEP[2:]:
            dims = list(rng.integers(1, 50, size=n + 1))
            b = BroadcastParenthesizer().run(dims)
            seq_ops = b.alternatives_evaluated  # = total (i,j,k) triples
            rows.append([n, seq_ops, b.steps, f"{seq_ops / b.steps:.1f}"])
        return rows

    rows = benchmark(run_all)
    print_table(
        "Sequential work vs broadcast schedule",
        ["N", "seq alternative evals", "array steps", "speedup"],
        rows,
    )
    speedups = [float(r[3]) for r in rows]
    assert speedups == sorted(speedups)  # grows with N
    assert speedups[-1] > speedups[0] * 4


def test_fig8_serialization_overhead(benchmark, rng):
    # The Figure-8 transform's price: dummy nodes (hardware) and 2x time.
    def run_all():
        rows = []
        for n in N_SWEEP[1:5]:
            dims = list(rng.integers(1, 20, size=n + 1))
            mc = matrix_chain_andor(dims)
            ser = serialize(mc.graph)
            rows.append(
                [
                    n,
                    len(mc.graph),
                    len(ser.graph),
                    ser.dummies_added,
                    t_p_recurrence(n) / t_d_recurrence(n),
                ]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "Figure 8: serialization overhead (dummy nodes, delay ratio)",
        ["N", "nodes before", "nodes after", "dummies", "T_p/T_d"],
        rows,
    )
    for row in rows:
        assert row[2] == row[1] + row[3]
        assert row[4] == 2.0
