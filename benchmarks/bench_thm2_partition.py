"""THM2 — Optimal AND/OR-graph partition factor (Theorem 2, eq. 32).

Paper artifact: the folded AND/OR-tree of an ``(N+1)``-stage, ``m``-wide
serial problem with partition factor ``p`` has

    u(p) = (N−1)/(p−1)·m^{p+1} + (N·p−1)/(p−1)·m²

nodes, and binary partitioning (p = 2) minimizes it.

Reproduced here: the u(p) table over (N, m, p), validation of the closed
form against *constructed* graphs (node-by-node counts), and the
p = 2 optimum — plus the eq.-(33) derivative-sign reproduction note
(negative at exactly m=3, p=2; see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.andor import NodeKind, du_dp, fold_multistage, is_valid_instance, u_total_nodes
from repro.graphs import uniform_multistage
from _benchutil import print_table

N_LAYERS = 16
M_VALUES = [2, 3, 4]
P_VALUES = [2, 4, 16]


def compute_table():
    rows = []
    for m in M_VALUES:
        row = [m]
        for p in P_VALUES:
            row.append(u_total_nodes(N_LAYERS, m, p))
        rows.append(row)
    return rows


def test_thm2_u_table(benchmark):
    rows = benchmark(compute_table)
    print_table(
        f"Theorem 2: u(p) for N={N_LAYERS} layers",
        ["m"] + [f"p={p}" for p in P_VALUES],
        rows,
    )
    for row in rows:
        values = row[1:]
        assert values == sorted(values)  # p=2 minimal, u nondecreasing
        assert values[0] < values[-1]


def test_thm2_closed_form_vs_constructed_graphs(benchmark, rng):
    # Build real graphs and count nodes: eq. (32) must be exact.
    cases = [(4, 2, 2), (4, 2, 4), (4, 3, 2), (8, 2, 2), (9, 2, 3)]

    def build_all():
        out = []
        for n_layers, m, p in cases:
            g = uniform_multistage(rng, n_layers + 1, m)
            fm = fold_multistage(g, p=p)
            out.append((n_layers, m, p, len(fm.graph)))
        return out

    rows = []
    for n_layers, m, p, measured in benchmark(build_all):
        expected = u_total_nodes(n_layers, m, p)
        rows.append([n_layers, m, p, measured, expected])
        assert measured == expected
    print_table(
        "Eq. (32) vs constructed folded AND/OR-trees",
        ["N", "m", "p", "nodes_built", "u(p)"],
        rows,
    )


def test_thm2_derivative_signs(benchmark):
    def signs():
        return {
            (m, p): du_dp(N_LAYERS, m, float(p)) > 0
            for m in (2, 3, 4, 8)
            for p in (2, 3, 4)
        }

    s = benchmark(signs)
    # Positive almost everywhere in the theorem region...
    assert s[(4, 2)] and s[(8, 2)] and s[(2, 3)] and s[(3, 3)]
    # ...with the two boundary exceptions we record as a finding.
    assert not s[(2, 2)]
    assert not s[(3, 2)]


def test_thm2_irregular_argument(benchmark):
    # The paper's irregular-stage argument: reducing stages (m1..m4) with
    # 3-arc AND-nodes costs m1*m2*m3*m4 comparisons; binary reduction
    # costs min(m1*m3*(m2+m4), m2*m4*(m1+m3)) — always no worse for
    # m_i >= 2.
    def scan():
        rng = np.random.default_rng(1)
        worst = 0.0
        for _ in range(200):
            m1, m2, m3, m4 = rng.integers(2, 9, size=4)
            ternary = m1 * m2 * m3 * m4
            binary = min(m1 * m3 * (m2 + m4), m2 * m4 * (m1 + m3))
            worst = max(worst, binary / ternary)
        return worst

    worst = benchmark(scan)
    assert worst <= 1.0
