"""THROUGHPUT — the batch engine vs. a looped ``solve()``.

The paper's arrays are throughput devices: Section 4 feeds the Fig. 3
pipeline a *stream* of matrix strings and eq. 29 sizes the process count
for a stream of subproblems.  :func:`repro.exec.solve_batch` implements
that reading in software — stacked vectorized kernels, eq.-29 (KT²)
process sharding and a digest-keyed solve cache — and this module
measures each level against the baseline everyone would write first: a
Python loop over :func:`repro.solve`.

Reproduced artifact: ``BENCH_throughput.json`` with

* looped vs. batched vs. sharded wall-clock curves over batch sizes,
* the acceptance floor — batched ≥ 5x over looped at batch 64 of
  same-shape monadic-serial instances (fast backend, single process),
* second-pass cache stats (must be all hits, zero misses),
* the KT²-vs-even shard-planner ablation of eq. 29.

The checked-in copy under ``benchmarks/results/`` is regenerated with::

    PYTHONPATH=src python benchmarks/bench_throughput.py

(``--quick`` trims the batch-size grid; ``--out DIR`` redirects the
record.)  Note this container is 1-CPU: the sharded rows are recorded
honestly (pool overhead and no parallel speedup); on a multi-core host
the sharded column wins for large batches.
"""

from __future__ import annotations

import argparse
import pathlib
import time

import numpy as np

from repro import SolveCache, solve, solve_batch
from repro.dnc import plan_shards
from repro.graphs import traffic_light_problem

from _benchutil import print_table, write_bench_record

N_STAGES, M_VALUES = 6, 5
BATCH_SIZES = (16, 64, 256, 1024)
QUICK_BATCH_SIZES = (16, 64)
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _problems(rng: np.random.Generator, batch: int) -> list:
    return [traffic_light_problem(rng, N_STAGES, M_VALUES) for _ in range(batch)]


def _measure(batch_sizes: tuple[int, ...], workers: int) -> dict:
    """Looped / batched / sharded walls plus cache stats per batch size."""
    rng = np.random.default_rng(0xBEEF)
    solve_batch(_problems(rng, 2))  # warm imports out of the timed region
    rows = []
    for batch in batch_sizes:
        probs = _problems(rng, batch)

        start = time.perf_counter()
        looped = [solve(p, backend="fast") for p in probs]
        looped_s = time.perf_counter() - start

        start = time.perf_counter()
        batched = solve_batch(probs)
        batched_s = time.perf_counter() - start
        for rep, ref in zip(batched.reports, looped):
            assert rep.optimum == ref.optimum
            assert rep.solution.nodes == ref.solution.nodes

        start = time.perf_counter()
        sharded = solve_batch(probs, workers=workers, min_shard_items=16)
        sharded_s = time.perf_counter() - start
        assert all(
            rep.optimum == ref.optimum
            for rep, ref in zip(sharded.reports, looped)
        )

        cache = SolveCache(capacity=2 * batch)
        solve_batch(probs, cache=cache)
        second = solve_batch(probs, cache=cache)

        rows.append(
            {
                "batch": batch,
                "looped_seconds": looped_s,
                "batched_seconds": batched_s,
                "sharded_seconds": sharded_s,
                "batched_speedup": looped_s / batched_s,
                "sharded_speedup": looped_s / sharded_s,
                "fill_factor": batched.stats.fill_factor,
                "shards": sharded.stats.shards,
                "second_pass_cache_hits": second.stats.cache_hits,
                "second_pass_cache_misses": second.stats.executed,
            }
        )
    return {"workers": workers, "rows": rows}


def _shard_ablation(num_items: int, workers: int) -> dict:
    """Eq.-29 KT² planner vs. the naive even split, measured end to end."""
    rng = np.random.default_rng(0xF00D)
    probs = _problems(rng, num_items)
    out = {}
    for strategy in ("kt2", "even"):
        plan = plan_shards(num_items, workers, strategy=strategy)
        start = time.perf_counter()
        result = solve_batch(
            probs,
            workers=workers,
            min_shard_items=16,
            shard_strategy=strategy,
        )
        wall = time.perf_counter() - start
        out[strategy] = {
            "wall_seconds": wall,
            "shards": result.stats.shards,
            "shard_sizes": list(result.stats.shard_sizes),
            "kt2": plan.kt2,
            "schedule_total": plan.schedule.total,
        }
    return out


def _render(measured: dict, ablation: dict) -> None:
    print_table(
        f"solve_batch throughput, {N_STAGES} stages x {M_VALUES} values "
        f"(workers={measured['workers']})",
        ["batch", "looped s", "batched s", "sharded s", "batched x",
         "sharded x", "2nd-pass hits"],
        [
            [r["batch"], f"{r['looped_seconds']:.4f}",
             f"{r['batched_seconds']:.4f}", f"{r['sharded_seconds']:.4f}",
             f"{r['batched_speedup']:.1f}", f"{r['sharded_speedup']:.1f}",
             f"{r['second_pass_cache_hits']}/{r['batch']}"]
            for r in measured["rows"]
        ],
    )
    print_table(
        "eq.-29 shard-planner ablation",
        ["strategy", "shards", "sizes", "KT^2", "wall s"],
        [
            [s, d["shards"], d["shard_sizes"], f"{d['kt2']:.0f}",
             f"{d['wall_seconds']:.4f}"]
            for s, d in ablation.items()
        ],
    )


def _record(measured: dict, ablation: dict, out_dir: pathlib.Path) -> pathlib.Path:
    floor = next(r for r in measured["rows"] if r["batch"] >= 64)
    return write_bench_record(
        "throughput",
        design="batch-engine",
        backend="fast",
        n=N_STAGES,
        m=M_VALUES,
        wall_seconds=floor["batched_seconds"],
        iterations=floor["batch"],
        pu=floor["fill_factor"],
        extra={
            "workers": measured["workers"],
            "curves": measured["rows"],
            "batched_speedup_at_64": floor["batched_speedup"],
            "shard_ablation": ablation,
        },
        out_dir=out_dir,
    )


def test_throughput(tmp_path):
    measured = _measure(QUICK_BATCH_SIZES, workers=2)
    ablation = _shard_ablation(64, workers=2)
    _render(measured, ablation)
    _record(measured, ablation, tmp_path)
    floor = next(r for r in measured["rows"] if r["batch"] >= 64)
    assert floor["batched_speedup"] >= 5.0, (
        f"batched only {floor['batched_speedup']:.1f}x over looped solve()"
    )
    for row in measured["rows"]:
        assert row["second_pass_cache_hits"] == row["batch"]
        assert row["second_pass_cache_misses"] == 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="trim the batch-size grid to its first two points",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="pool size for the sharded column (default: 2)",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for BENCH_throughput.json (default: benchmarks/results)",
    )
    args = parser.parse_args()
    sizes = QUICK_BATCH_SIZES if args.quick else BATCH_SIZES
    measured = _measure(sizes, workers=args.workers)
    ablation = _shard_ablation(256, workers=args.workers)
    _render(measured, ablation)
    out_dir = pathlib.Path(args.out) if args.out else RESULTS_DIR
    out_dir.mkdir(parents=True, exist_ok=True)
    path = _record(measured, ablation, out_dir)
    floor = next(r for r in measured["rows"] if r["batch"] >= 64)
    print(f"\nwrote {path} (batched {floor['batched_speedup']:.1f}x at batch 64)")


if __name__ == "__main__":
    main()
