"""Reporting helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import pathlib
from typing import Any

__all__ = ["print_table", "write_bench_record"]


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Uniform fixed-width table printer for reproduced artifacts."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def write_bench_record(
    name: str,
    *,
    design: str,
    backend: str,
    n: int,
    m: int,
    wall_seconds: float,
    iterations: int,
    pu: float,
    extra: dict[str, Any] | None = None,
    out_dir: str | pathlib.Path | None = None,
) -> pathlib.Path:
    """Emit a uniform ``BENCH_<name>.json`` record and return its path.

    Every benchmark writes the same shape — design, backend, problem
    size (N matrices × m values), wall-clock seconds, paper iterations,
    and PU — so downstream tooling (and the CI smoke step) can diff runs
    without per-benchmark parsers.  ``out_dir`` defaults to the current
    working directory; scratch records there are gitignored, while
    records checked in deliberately live under ``benchmarks/results/``.
    """
    record: dict[str, Any] = {
        "bench": name,
        "design": design,
        "backend": backend,
        "N": int(n),
        "m": int(m),
        "wall_seconds": float(wall_seconds),
        "iterations": int(iterations),
        "pu": float(pu),
    }
    if extra:
        record.update(extra)
    out = pathlib.Path(out_dir or ".") / f"BENCH_{name}.json"
    out.write_text(json.dumps(record, indent=2) + "\n")
    return out
