"""Reporting helpers shared by the benchmark modules."""

from __future__ import annotations

__all__ = ["print_table"]


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Uniform fixed-width table printer for reproduced artifacts."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
