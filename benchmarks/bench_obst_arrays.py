"""OBST — the paper's second polyadic family on the §6.2 arrays.

Section 2.1 names optimal binary search trees alongside matrix-chain
ordering as polyadic formulations.  The generalized triangular engine
maps OBST onto the same two processor organizations; this bench
regenerates the schedule laws of the family:

* broadcast mapping: ``T_d(n) = n + 1`` for ``n`` keys (one step more
  than the chain's ``T_d(N) = N`` — each size-``s`` span has ``s``
  alternatives over children summing to ``s − 1``);
* serialized mapping: ``≈ 2n`` steps, the same 2x serialization price
  as Proposition 3.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import random_obst_weights, solve_obst
from repro.systolic import ObstSpec, TriangularArray, obst_t_d
from _benchutil import print_table

N_SWEEP = [2, 4, 8, 12, 16, 24]


def test_obst_schedules(benchmark):
    def run_all():
        rows = []
        for n in N_SWEEP:
            p, q = random_obst_weights(np.random.default_rng(n), n)
            ref = solve_obst(p, q)
            b = TriangularArray("broadcast").run(ObstSpec(p, q))
            s = TriangularArray("systolic").run(ObstSpec(p, q))
            assert b.value == pytest.approx(ref.cost)
            assert s.value == pytest.approx(ref.cost)
            rows.append([n, b.steps, obst_t_d(n), s.steps, 2 * n, b.num_processors])
        return rows

    rows = benchmark(run_all)
    print_table(
        "OBST on the Section-6.2 arrays",
        ["n keys", "T_d meas", "n+1", "T_p meas", "~2n", "processors"],
        rows,
    )
    for n, td, td_pred, tp, two_n, _procs in rows:
        assert td == td_pred == n + 1
        assert two_n <= tp <= two_n + 3  # same 2x law, small constant


def test_obst_vs_chain_schedule_offset(benchmark):
    # The extra alternative per subproblem costs exactly one step on the
    # broadcast mapping, independent of n.
    from repro.systolic import t_d_recurrence

    def offsets():
        return [obst_t_d(n) - t_d_recurrence(n) for n in range(1, 40)]

    off = benchmark(offsets)
    assert all(o == 1 for o in off)


def test_obst_quality_on_skewed_weights(benchmark):
    # Shape check: with one dominant key, the array's chosen root is
    # that key and the cost beats the balanced tree.
    from repro.dp import expected_depth_cost

    def run():
        p = [0.02, 0.02, 0.85, 0.02, 0.02]
        q = [0.014] * 6  # renormalized-ish; exact scale is irrelevant
        sol = solve_obst(p, q)
        run = TriangularArray("broadcast").run(ObstSpec(p, q))
        balanced = (3, (1, None, (2, None, None)), (4, None, (5, None, None)))
        return sol, run, expected_depth_cost(p, q, balanced)

    sol, run, balanced_cost = benchmark(run)
    assert sol.root[(1, 5)] == 3
    assert run.value == pytest.approx(sol.cost)
    assert sol.cost <= balanced_cost
