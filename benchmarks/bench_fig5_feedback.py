"""FIG5 — The feedback systolic array (paper Figure 5).

Paper artifacts:

* the 15-iteration walkthrough on the Fig. 1(b) graph (N = 4 stages,
  m = 3 values: ``(N+1)·m = 15``);
* the general ``(N+1)·m`` schedule with PU ``((N−1)m² + m)/((N+1)m²) ≈ 1``;
* the input-bandwidth claim: only node values enter the array (``N·m``
  words) instead of edge costs (``(N−1)·m²`` words) — "an order-of-
  magnitude reduction in the input overhead";
* optimal-path extraction via the path registers in ``P_m``.

All four are reproduced and asserted below.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import solve_node_value
from repro.graphs import fig1b_problem, traffic_light_problem
from repro.systolic import FeedbackSystolicArray, feedback_pu
from _benchutil import print_table

SWEEP = [(4, 3), (8, 4), (16, 8), (32, 8), (64, 16)]


def random_problem(rng, n, m):
    return traffic_light_problem(rng, n, m)


def test_fig5_paper_walkthrough(benchmark):
    p = fig1b_problem()
    arr = FeedbackSystolicArray()
    res = benchmark(arr.run, p)
    assert res.report.iterations == 15  # "completed in 15 iterations"
    ref = solve_node_value(p)
    assert np.isclose(res.optimum, ref.optimum)
    assert np.isclose(p.to_graph().path_cost(res.path.nodes), res.optimum)
    print(
        f"\nFig. 5 walkthrough: optimum={res.optimum}, path={res.path.nodes}, "
        f"iterations={res.report.iterations} (paper: 15)"
    )


def test_fig5_schedule_and_pu_sweep(benchmark, rng):
    arr = FeedbackSystolicArray()

    def run_all():
        rows = []
        for n, m in SWEEP:
            p = random_problem(rng, n, m)
            res = arr.run(p)
            ref = solve_node_value(p)
            assert np.isclose(res.optimum, ref.optimum)
            rows.append(
                [
                    n,
                    m,
                    res.report.iterations,
                    (n + 1) * m,
                    f"{res.report.processor_utilization:.4f}",
                    f"{feedback_pu(n, m):.4f}",
                ]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "Fig. 5 feedback array: schedule and PU vs (N, m)",
        ["N", "m", "iterations", "(N+1)m", "PU_measured", "PU_paper"],
        rows,
    )
    for row in rows:
        assert row[2] == row[3]  # exact schedule formula
        assert float(row[4]) == pytest.approx(float(row[5]))
    assert float(rows[-1][4]) > 0.95  # PU -> 1


def test_fig5_input_bandwidth_claim(benchmark, rng):
    arr = FeedbackSystolicArray()

    def run_all():
        rows = []
        for n, m in SWEEP:
            p = random_problem(rng, n, m)
            res = arr.run(p)
            node, edge = p.input_bandwidth()
            assert res.report.input_words == node
            rows.append([n, m, node, edge, f"{edge / node:.1f}x"])
        return rows

    rows = benchmark(run_all)
    print_table(
        "Section 3.2 input-bandwidth claim: node values vs edge costs",
        ["N", "m", "node_words(in)", "edge_words(avoided)", "reduction"],
        rows,
    )
    # The reduction factor grows with m — order-of-magnitude at m = 16.
    assert float(rows[-1][4].rstrip("x")) > 10.0


def test_fig5_path_registers(benchmark, rng):
    arr = FeedbackSystolicArray()

    def run_all():
        out = []
        for seed in range(5):
            p = random_problem(np.random.default_rng(seed), 8, 5)
            res = arr.run(p)
            out.append((p, res))
        return out

    for p, res in benchmark(run_all):
        # Traced path must realize the reported optimum on the graph.
        assert np.isclose(p.to_graph().path_cost(res.path.nodes), res.optimum)
