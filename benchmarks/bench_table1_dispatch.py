"""TAB1 — Table 1: the class → method → architecture dispatch.

Paper artifact: the summary table mapping each of the four DP classes to
its suitable solution method and functional requirements.

Reproduced here: one representative problem per class pushed through the
library's ``solve()`` dispatcher; each must route to the Table-1 method,
produce the sequential oracle's optimum, and report a validated result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DPClass, MatrixChainProblem, solve
from repro.dp import banded_objective
from repro.graphs import traffic_light_problem, uniform_multistage
from _benchutil import print_table


def build_problems(rng):
    return [
        ("monadic-serial", traffic_light_problem(rng, 6, 5), DPClass.MONADIC_SERIAL, "fig5"),
        ("polyadic-serial", uniform_multistage(rng, 48, 3), DPClass.POLYADIC_SERIAL, "divide-and-conquer"),
        ("monadic-nonserial", banded_objective(rng, [4, 3, 4, 3]), DPClass.MONADIC_NONSERIAL, "grouping"),
        ("polyadic-nonserial", MatrixChainProblem((30, 35, 15, 5, 10, 20, 25)), DPClass.POLYADIC_NONSERIAL, "parenthesizer"),
    ]


def test_table1_dispatch(benchmark, rng):
    problems = build_problems(rng)

    def run_all():
        return [(name, solve(p), want_cls, want_method) for name, p, want_cls, want_method in problems]

    results = benchmark(run_all)
    rows = []
    for name, rep, want_cls, want_method in results:
        rows.append(
            [
                name,
                rep.dp_class.name,
                rep.method,
                f"{rep.optimum:.3f}",
                rep.validated,
            ]
        )
        assert rep.dp_class is want_cls
        assert want_method in rep.method
        assert rep.validated
    print_table(
        "Table 1: dispatch per DP class",
        ["problem class", "classified", "method", "optimum", "validated"],
        rows,
    )


def test_table1_known_optimum(benchmark):
    rep = benchmark(solve, MatrixChainProblem((30, 35, 15, 5, 10, 20, 25)))
    assert rep.optimum == 15125.0  # CLRS-known optimal order cost


def test_table1_architecture_overrides(benchmark, rng):
    from repro.graphs import fig1a_graph

    def run_all():
        return [
            solve(fig1a_graph()).method,
            solve(fig1a_graph(), prefer="broadcast").method,
            solve(fig1a_graph(), prefer="sequential").method,
            solve(MatrixChainProblem((2, 3, 4, 5)), prefer="broadcast").method,
        ]

    methods = benchmark(run_all)
    assert methods == [
        "fig3-pipelined-array",
        "fig4-broadcast-array",
        "sequential-sweep",
        "parenthesizer-broadcast",
    ]
