"""FIG6 — Figure 6: optimal granularity of parallel divide-and-conquer.

Paper artifact: for N = 4096 equal-size matrices multiplied on K
synchronous systolic arrays, plot T and K·T² against K (eq. 29); the
minimum of K·T² falls near N/log₂N (the paper quotes K = 431 or 465) and
the curve is jagged because the wind-down time drops in steps.

Reproduced here: the full K-sweep of both the closed form and the
round-synchronous scheduler simulation, the exact integer argmin, and
the shape assertions.  The measured argmin of the published formula is
K = 399 with the paper's quoted 431/465 within 10% of the minimum —
see EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnc import (
    argmin_kt2,
    kt2,
    kt2_curve,
    optimal_granularity,
    rounds_only,
    schedule_time,
)
from _benchutil import print_table

N = 4096
K_SWEEP = list(range(2, N + 1))


def compute_curve() -> np.ndarray:
    return kt2_curve(N, K_SWEEP)


def test_fig6_kt2_curve(benchmark):
    curve = benchmark(compute_curve)
    best_idx = int(np.argmin(curve))
    best_k = K_SWEEP[best_idx]

    # Reproduce the figure's series at the paper's interesting points.
    sample_ks = [64, 128, 256, 341, 399, 431, 465, 512, 1024, 2048]
    rows = []
    for k in sample_ks:
        st = schedule_time(N, k)
        rows.append([k, st.computation, st.wind_down, st.total, int(kt2(N, k))])
    print_table(
        f"Figure 6 (N={N}): schedule time and KT^2 vs K",
        ["K", "T_c", "T_w", "T", "K*T^2"],
        rows,
    )
    print(
        f"argmin KT^2: K={best_k} (KT^2={curve[best_idx]:.0f}); "
        f"N/log2N = {optimal_granularity(N):.0f}; paper quotes K=431 or 465"
    )

    # Shape claims: the minimum sits in the N/log2N valley …
    assert 0.7 * optimal_granularity(N) <= best_k <= 2.1 * optimal_granularity(N)
    # … the paper's quoted minima are near-optimal …
    assert kt2(N, 431) <= 1.10 * curve[best_idx]
    assert kt2(N, 465) <= 1.10 * curve[best_idx]
    # … and far-off K are clearly worse (the curve is a real valley).
    assert kt2(N, 16) > 3 * curve[best_idx]
    assert kt2(N, 4096) > 3 * curve[best_idx]


def test_fig6_simulation_confirms_closed_form(benchmark):
    # The event-driven scheduler reproduces eq. (29) exactly over the
    # formula's validity domain (K <= N/2).
    ks = list(range(2, N // 2, 37))

    def simulate():
        return [rounds_only(N, k) for k in ks]

    sim = benchmark(simulate)
    for k, t in zip(ks, sim):
        assert t == schedule_time(N, k).total, k


def test_fig6_jaggedness(benchmark):
    # "the curve is not smooth": adjacent K values jump in both directions.
    curve = benchmark(lambda: kt2_curve(N, list(range(300, 600))))
    diffs = np.diff(curve)
    assert (diffs > 0).any() and (diffs < 0).any()


def test_fig6_t_monotone_in_k(benchmark):
    times = benchmark(
        lambda: [schedule_time(N, k).total for k in (1, 4, 16, 64, 256, 1024)]
    )
    assert times == sorted(times, reverse=True)
