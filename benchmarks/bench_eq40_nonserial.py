"""EQ40 — Step count of monadic-nonserial elimination (Section 6.1).

Paper artifact: solving the banded objective
``min Σ g_k(V_k, V_{k+1}, V_{k+2})`` by eliminating variables in order
costs

    Σ_{k=1}^{N-2} m_k·m_{k+1}·m_{k+2}  +  m_{N-1}·m_N        (eq. 40)

steps, and the problem then serializes by grouping adjacent variables
(eq. 41) onto the Section-3 arrays.

Reproduced here: measured step counts vs the closed form over a size
sweep, optimality of the result against brute force, the grouping
transform's equivalence, and the elimination-order ablation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import (
    banded_objective,
    brute_force_minimum,
    eliminate,
    eq40_step_count,
    group_variables_to_serial,
    solve_backward,
)
from _benchutil import print_table

SIZE_SWEEP = [
    [3, 3, 3],
    [4, 4, 4, 4],
    [3, 5, 2, 4, 3],
    [4, 4, 4, 4, 4, 4],
    [5, 5, 5, 5, 5, 5, 5],
]


def test_eq40_step_counts(benchmark, rng):
    def run_all():
        rows = []
        for sizes in SIZE_SWEEP:
            obj = banded_objective(rng, sizes)
            res = eliminate(obj)
            rows.append(
                [
                    "x".join(map(str, sizes)),
                    res.total_steps,
                    eq40_step_count(sizes),
                    res.max_table_size,
                ]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "Eq. (40): measured elimination steps vs closed form",
        ["domain sizes", "steps_measured", "steps_eq40", "peak_table"],
        rows,
    )
    for row in rows:
        assert row[1] == row[2]


def test_eq40_optimality(benchmark, rng):
    def run_all():
        out = []
        for sizes in SIZE_SWEEP[:3]:  # brute force only on small ones
            obj = banded_objective(rng, sizes)
            res = eliminate(obj)
            ref, _ = brute_force_minimum(obj)
            out.append((res.optimum, ref))
        return out

    for got, want in benchmark(run_all):
        assert np.isclose(got, want)


def test_eq41_grouping_transform(benchmark, rng):
    # Section 6.1 serialization: composite variables -> multistage graph
    # with the same optimum, ready for the systolic arrays.
    def run_all():
        rows = []
        for sizes in SIZE_SWEEP[:4]:
            obj = banded_objective(rng, sizes)
            direct = eliminate(obj)
            graph, _ = group_variables_to_serial(obj)
            serial = solve_backward(graph)
            rows.append(
                [
                    "x".join(map(str, sizes)),
                    f"{direct.optimum:.4f}",
                    f"{serial.optimum:.4f}",
                    "x".join(map(str, graph.stage_sizes)),
                ]
            )
            assert np.isclose(direct.optimum, serial.optimum)
        return rows

    rows = benchmark(run_all)
    print_table(
        "Eq. (41): grouping transform vs direct elimination",
        ["sizes", "eliminate", "serial sweep", "composite stages"],
        rows,
    )


def test_eq40_order_ablation(benchmark, rng):
    # DESIGN.md ablation: the natural order achieves eq. (40); orders
    # that eliminate interior variables early pay larger joint tables.
    sizes = [4, 4, 4, 4, 4, 4]
    obj = banded_objective(rng, sizes)
    names = list(obj.variables)

    def run_orders():
        natural = eliminate(obj)
        interior_first = eliminate(
            obj, order=[names[2], names[3]] + [names[0], names[1]] + names[4:]
        )
        reverse = eliminate(obj, order=list(reversed(names)))
        return natural, interior_first, reverse

    natural, interior_first, reverse = benchmark(run_orders)
    print(
        f"\nOrder ablation (sizes {sizes}): natural={natural.total_steps} "
        f"(eq40={eq40_step_count(sizes)}), interior-first="
        f"{interior_first.total_steps}, reverse={reverse.total_steps}"
    )
    assert natural.total_steps == eq40_step_count(sizes)
    assert reverse.total_steps == natural.total_steps  # band is symmetric
    assert interior_first.total_steps > natural.total_steps
    assert np.isclose(natural.optimum, interior_first.optimum)
    assert np.isclose(natural.optimum, reverse.optimum)
