"""MESH — the matrix-multiplication unit of the D&C schedule, in cycles.

Section 4 treats "the time to multiply two matrices by a systolic array"
as the constant ``T₁`` and cites the authors' own array-design paper
[19] for the unit.  This bench instantiates the unit — the classic 2-D
mesh with stationary results — measures ``T₁ = 3m − 2`` cycles, and
re-expresses the Figure-6 granularity result in *clock cycles* instead
of abstract rounds: multiplying the round count by a measured ``T₁``
rescales the KT² curve without moving its argmin (K·(T·T₁)² =
T₁²·K·T², a constant factor), which the bench asserts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dnc import argmin_kt2, kt2, schedule_time
from repro.semiring import MIN_PLUS, matmul
from repro.systolic import MeshMatrixMultiplier, mesh_cycles
from _benchutil import print_table

M_SWEEP = [2, 4, 8, 12]


def test_mesh_t1_cycles(benchmark, rng):
    mm = MeshMatrixMultiplier()

    def run_all():
        rows = []
        for m in M_SWEEP:
            a = rng.uniform(0, 9, (m, m))
            b = rng.uniform(0, 9, (m, m))
            res = mm.run(a, b)
            assert np.allclose(res.value, matmul(MIN_PLUS, a, b))
            rows.append(
                [
                    m,
                    res.report.wall_ticks,
                    3 * m - 2,
                    res.report.total_ops,
                    f"{res.report.processor_utilization:.3f}",
                ]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "Mesh matmul unit: T1 in cycles (paper's [19])",
        ["m", "cycles", "3m-2", "ops", "PU"],
        rows,
    )
    for row in rows:
        assert row[1] == row[2]
        assert row[3] == row[0] ** 3  # one op per (i, j, k)


def test_fig6_in_cycles(benchmark):
    # Rescaling Figure 6 by a real T1 keeps the argmin fixed.
    n, m = 4096, 8
    t1 = mesh_cycles(m, m, m)

    def sweep():
        best_k, best_v = None, float("inf")
        for k in range(2, n + 1, 1):
            v = kt2(n, k, t1=float(t1))
            if v < best_v:
                best_k, best_v = k, v
        return best_k, best_v

    best_k, best_v = benchmark(sweep)
    abstract_k, abstract_v = argmin_kt2(n, k_min=2, k_max=n)
    print(
        f"\nFigure 6 in cycles (T1 = {t1} for m = {m}): argmin K = {best_k}, "
        f"KT^2 = {best_v:.0f} cycles^2 (= T1^2 x {abstract_v:.0f})"
    )
    assert best_k == abstract_k
    assert best_v == pytest.approx(t1 * t1 * abstract_v)


def test_mesh_pu_limit(benchmark, rng):
    # PU = m^3 / ((3m-2) m^2) -> 1/3: the mesh trades utilization for
    # the wavefront's O(m) latency.
    def run_all():
        out = []
        for m in M_SWEEP:
            a = rng.uniform(0, 9, (m, m))
            b = rng.uniform(0, 9, (m, m))
            out.append(MeshMatrixMultiplier().run(a, b).report.processor_utilization)
        return out

    pus = benchmark(run_all)
    # PU = m/(3m-2): decreasing from 1/2 (m=2) toward the 1/3 limit.
    assert pus == sorted(pus, reverse=True)
    assert abs(pus[-1] - 1 / 3) < 0.05
