"""EQ9 — Processor utilization of the Fig. 3/4 arrays (eq. 9).

Paper artifact: ``PU = (N−2)/N + 1/(N·m) ≈ 1`` for large N, m — the
utilization of the pipelined and broadcast matrix-string arrays on an
``(N+1)``-stage single-source/sink graph with ``m``-wide interior.

Reproduced here: the closed form over an (N, m) sweep side-by-side with
the PU *measured* from the cycle-accurate simulators (serial ops ÷
iterations × PEs).  Measured and paper values differ only through the
paper's ``N·m`` vs the walkthrough's ``(N−1)·m`` iteration convention
(the paper's own Fig. 3 example runs 9 = (N−1)·m iterations); both tend
to 1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import eq9_pu
from repro.graphs import single_source_sink
from repro.systolic import BroadcastMatrixStringArray, PipelinedMatrixStringArray
from _benchutil import print_table

SWEEP = [(4, 3), (8, 3), (8, 8), (16, 4), (32, 8), (64, 8), (128, 16)]


def measure(rng) -> list[list]:
    rows = []
    pipe = PipelinedMatrixStringArray()
    bcast = BroadcastMatrixStringArray()
    for n_layers, m in SWEEP:
        g = single_source_sink(rng, n_layers - 1, m)
        rp = pipe.run_graph(g).report
        rb = bcast.run_graph(g).report
        rows.append(
            [
                n_layers,
                m,
                f"{eq9_pu(n_layers, m):.4f}",
                f"{rp.processor_utilization:.4f}",
                f"{rb.processor_utilization:.4f}",
                rp.iterations,
                n_layers * m,
            ]
        )
    return rows


def test_eq9_pu_sweep(benchmark, rng):
    rows = benchmark(measure, rng)
    print_table(
        "Eq. (9): PU of the Fig. 3/4 arrays vs (N, m)",
        ["N", "m", "PU_eq9", "PU_fig3", "PU_fig4", "iters_meas", "iters_paper(N*m)"],
        rows,
    )
    for (n_layers, m), row in zip(SWEEP, rows):
        paper = float(row[2])
        meas3 = float(row[3])
        meas4 = float(row[4])
        # Both designs measure identical PU (same schedule).
        assert meas3 == pytest.approx(meas4)
        # Measured = paper * N/(N-1): the iteration-convention factor
        # (values in `rows` are rounded to 4 decimals for the table).
        assert meas3 == pytest.approx(paper * n_layers / (n_layers - 1), abs=2e-4)
        # And both approach 1 for long strings.
    assert float(rows[-1][2]) > 0.98
    assert float(rows[-1][3]) > 0.98


def test_eq9_pu_increases_with_n(rng, benchmark):
    def series():
        return [eq9_pu(n, 8) for n in (4, 8, 16, 32, 64, 128, 256)]

    values = benchmark(series)
    assert values == sorted(values)
    assert values[-1] > 0.99
