"""ABLATIONS — design-choice studies called out in DESIGN.md §5.

Not a paper table; these benches quantify the design decisions the
reproduction made so their effect is measured rather than asserted:

* D&C pairing policy (leftmost vs balanced): identical round counts,
  different tree shapes.
* AND/OR compare capacity in the level-synchronous mapping.
* AO* pruning on/off: same optimum, fewer visited nodes.
* Semiring matmul block size: identical results, bounded temporaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.andor import ao_star, fold_multistage, map_to_array, matrix_chain_andor
from repro.dnc import simulate_chain_product
from repro.graphs import uniform_multistage
from repro.semiring import MIN_PLUS, matmul
from _benchutil import print_table


def test_ablation_pairing_policy(benchmark, rng):
    def run_all():
        rows = []
        for n, k in [(64, 8), (100, 16), (255, 32)]:
            a = simulate_chain_product(n, k, policy="leftmost")
            b = simulate_chain_product(n, k, policy="balanced")
            rows.append([n, k, a.rounds, b.rounds, a.computation_rounds, b.computation_rounds])
        return rows

    rows = benchmark(run_all)
    print_table(
        "Ablation: D&C pairing policy (schedule length is invariant)",
        ["N", "K", "rounds(left)", "rounds(bal)", "Tc(left)", "Tc(bal)"],
        rows,
    )
    for row in rows:
        assert row[2] == row[3]


def test_ablation_compare_capacity(benchmark, rng):
    g = uniform_multistage(rng, 17, 3)  # N = 16 layers: deep fold
    fm = fold_multistage(g, p=2)

    def run_all():
        return {cap: map_to_array(fm.graph, compare_capacity=cap).steps for cap in (1, 2, 4, 8)}

    steps = benchmark(run_all)
    print_table(
        "Ablation: per-step OR-fold capacity vs schedule steps",
        ["capacity", "steps"],
        [[c, s] for c, s in sorted(steps.items())],
    )
    ordered = [steps[c] for c in (1, 2, 4, 8)]
    assert ordered == sorted(ordered, reverse=True)
    assert ordered[0] > ordered[-1]  # capacity genuinely helps here


def test_ablation_ao_star_pruning(benchmark):
    def run_all():
        visited_with, visited_without, pruned = 0, 0, 0
        for seed in range(8):
            rng = np.random.default_rng(seed)
            dims = list(rng.integers(1, 120, size=10))
            mc = matrix_chain_andor(dims)
            a = ao_star(mc.graph, mc.root, prune=True)
            b = ao_star(mc.graph, mc.root, prune=False)
            assert a.cost == b.cost
            visited_with += a.nodes_visited
            visited_without += b.nodes_visited
            pruned += a.pruned_and_nodes
        return visited_with, visited_without, pruned

    vw, vo, pruned = benchmark(run_all)
    print(
        f"\nAblation AO*: visited {vw} (pruned={pruned}) vs {vo} without "
        f"pruning, same optima"
    )
    assert pruned > 0
    assert vw <= vo


def test_ablation_matmul_block_size(benchmark, rng):
    a = rng.uniform(0, 9, (300, 200))
    b = rng.uniform(0, 9, (200, 150))

    def run_all():
        return [matmul(MIN_PLUS, a, b, block_rows=br) for br in (16, 64, 512)]

    outs = benchmark(run_all)
    for o in outs[1:]:
        assert np.array_equal(outs[0], o)


def test_ablation_aostar_heuristic_quality(benchmark):
    """How heuristic quality buys expansion savings in explicit AO*.

    The paper cites Nilsson's AO* as the top-down alternative to the
    bottom-up sweep; this ablation quantifies the trade: with the
    trivial bound the whole graph is expanded, with sharper admissible
    bounds the search narrows toward the solution tree.
    """
    from repro.andor import ao_star_explicit, matrix_chain_andor

    def run_all():
        rows = []
        rng = np.random.default_rng(17)
        dims = list(rng.integers(1, 80, size=11))
        mc = matrix_chain_andor(dims)
        exact = mc.graph.evaluate()
        for name, frac in [("h=0", 0.0), ("h=50%", 0.5), ("h=90%", 0.9), ("h=exact", 1.0)]:
            res = ao_star_explicit(
                mc.graph, mc.root, heuristic=lambda n, f=frac: f * float(exact[n])
            )
            rows.append([name, res.nodes_expanded, res.nodes_total, res.revisions, res.cost])
        return rows

    rows = benchmark(run_all)
    print_table(
        "Ablation: AO* expansion vs heuristic sharpness",
        ["heuristic", "expanded", "total nodes", "revisions", "cost"],
        rows,
    )
    costs = {r[0]: r[4] for r in rows}
    assert len(set(costs.values())) == 1  # admissible => always optimal
    expansions = [r[1] for r in rows]
    assert expansions[-1] <= expansions[0]
    assert expansions[-1] < rows[0][2]  # informed search skips nodes
