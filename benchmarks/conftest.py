"""Shared fixtures and reporting helpers for the benchmark suite.

Each ``bench_*.py`` module regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index): it computes the paper's series
with this library, prints the rows the paper reports, asserts the
*shape* claims (who wins, by what order, where crossovers fall), and
times the computation with pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the reproduced tables inline.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xBEEF)



