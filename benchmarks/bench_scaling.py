"""SCALING — throughput of the vectorized substrate at realistic sizes.

Not a paper artifact: these benches guard the performance of the NumPy
hot paths (the HPC-guide discipline — measure, don't guess), so
regressions in the broadcast-reduce matmul, the stage sweeps, or the
elimination engine are visible in CI history.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import banded_objective, eliminate, solve_backward, solve_matrix_chain
from repro.graphs import single_source_sink, uniform_multistage
from repro.semiring import MIN_PLUS, batched_matmul, chain_product, matmul


def test_scaling_matmul_512(benchmark, rng):
    a = rng.uniform(0, 9, (512, 512))
    b = rng.uniform(0, 9, (512, 512))
    out = benchmark(matmul, MIN_PLUS, a, b)
    assert out.shape == (512, 512)
    # Spot-check one cell against the definition.
    assert out[3, 7] == pytest.approx(np.min(a[3, :] + b[:, 7]))


def test_scaling_batched_matmul(benchmark, rng):
    a = rng.uniform(0, 9, (64, 64, 64))
    b = rng.uniform(0, 9, (64, 64, 64))
    out = benchmark(batched_matmul, MIN_PLUS, a, b)
    assert out.shape == (64, 64, 64)
    assert np.allclose(out[5], matmul(MIN_PLUS, a[5], b[5]))


def test_scaling_long_sweep(benchmark, rng):
    # 500 stages x 128 states: ~8.2M edge relaxations per solve.
    g = uniform_multistage(rng, 500, 128)
    sol = benchmark(solve_backward, g)
    assert np.isfinite(sol.optimum)
    assert sol.op_count == 499 * 128 * 128


def test_scaling_chain_product(benchmark, rng):
    mats = [rng.uniform(0, 9, (128, 128)) for _ in range(64)]
    out = benchmark(chain_product, MIN_PLUS, mats)
    assert out.shape == (128, 128)


def test_scaling_matrix_chain_dp(benchmark, rng):
    dims = list(rng.integers(1, 200, size=201))  # N = 200: ~1.3M (i,j,k)
    order = benchmark(solve_matrix_chain, dims)
    assert order.cost > 0


def test_scaling_elimination(benchmark, rng):
    sizes = [12] * 10  # peak joint table 12^3, ten eliminations
    obj = banded_objective(rng, sizes)
    res = benchmark(eliminate, obj)
    assert np.isfinite(res.optimum)


def test_scaling_systolic_simulator(benchmark, rng):
    # The scalar RTL loop: keep its constant factor honest.
    from repro.systolic import FeedbackSystolicArray

    from repro.graphs import traffic_light_problem

    p = traffic_light_problem(rng, 24, 12)
    res = benchmark(FeedbackSystolicArray().run, p)
    assert res.report.iterations == 25 * 12
