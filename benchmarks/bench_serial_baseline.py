"""SERIAL — The uniprocessor baseline the systolic claims rest on.

Paper artifact: "it takes (N−2)m² + m iterations to solve the problem
with a single processor" versus ``N·m`` iterations on ``m`` PEs — the
numerator and denominator of eq. (9).

Reproduced here: measured sequential operation counts against the closed
form, the systolic iteration counts, and the resulting speedup series
(→ m), for both the edge-fed (Fig. 3) and node-fed (Fig. 5) pipelines.
Also times the *actual* numpy evaluation as the library's practical
sequential baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import solve_backward, solve_node_value
from repro.graphs import single_source_sink, traffic_light_problem
from repro.systolic import FeedbackSystolicArray, PipelinedMatrixStringArray
from _benchutil import print_table

SWEEP = [(8, 4), (16, 4), (32, 8), (64, 8), (128, 8)]


def test_serial_op_count_formula(benchmark, rng):
    def run_all():
        rows = []
        for n_layers, m in SWEEP:
            g = single_source_sink(rng, n_layers - 1, m)
            formula = (n_layers - 2) * m * m + m
            assert g.serial_op_count() == formula
            res = PipelinedMatrixStringArray().run_graph(g)
            rows.append(
                [
                    n_layers,
                    m,
                    formula,
                    res.report.iterations,
                    f"{formula / res.report.iterations:.2f}",
                    m,
                ]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "Uniprocessor (N-2)m^2+m vs systolic (N-1)m iterations",
        ["N", "m", "serial_ops", "systolic_iters", "speedup", "m (bound)"],
        rows,
    )
    for row in rows:
        assert float(row[4]) <= row[5]
    # Long strings approach the m-fold bound.
    assert float(rows[-1][4]) > 0.9 * rows[-1][5]


def test_feedback_serial_comparison(benchmark, rng):
    def run_all():
        rows = []
        for n, m in [(8, 4), (16, 8), (32, 8)]:
            p = traffic_light_problem(rng, n, m)
            seq = solve_node_value(p)
            fb = FeedbackSystolicArray().run(p)
            assert np.isclose(seq.optimum, fb.optimum)
            rows.append(
                [n, m, seq.op_count, fb.report.iterations,
                 f"{seq.op_count / fb.report.iterations:.2f}"]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "Fig. 5 vs sequential sweep (node-value problems)",
        ["N", "m", "serial_ops", "fig5_iters", "speedup"],
        rows,
    )


def test_numpy_sequential_baseline_scaling(benchmark, rng):
    # The vectorized sweep is the library's practical oracle; time it at
    # a realistic size so regressions in the hot path are visible.
    g = single_source_sink(rng, 199, 64)  # 200 layers, m = 64
    sol = benchmark(solve_backward, g)
    assert np.isfinite(sol.optimum)
    assert sol.op_count == g.serial_op_count() + 64  # + the sink layer
