"""FIG3 — The pipelined systolic array schedule (paper Figure 3).

Paper artifact: the walkthrough schedule for A·(B·(C·D)) on the
Fig. 1(a) graph — three matrix-vector products of three iterations each
(nine iterations on three PEs), alternating stationary/moving vectors
under the ODD/MOVE control signals; generally ``(P−1)·m`` iterations
with an ``m−1``-tick drain for a string of ``P`` operands.

Reproduced here: the exact example schedule, an (N, m) sweep of
iterations and wall ticks against the sequential baseline, and the
speedup shape (→ m for long strings).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import solve_backward
from repro.graphs import fig1a_graph, single_source_sink
from repro.systolic import PipelinedMatrixStringArray
from _benchutil import print_table

SWEEP = [(4, 3), (8, 4), (16, 4), (16, 8), (32, 8), (64, 8)]


def test_fig3_paper_walkthrough(benchmark):
    g = fig1a_graph()
    arr = PipelinedMatrixStringArray()
    res = benchmark(arr.run_graph, g)
    assert float(res.value) == 6.0
    # Three products x m=3 iterations, as in the paper's walkthrough.
    assert res.report.iterations == 9
    assert res.report.wall_ticks == 9 + 2
    print(
        f"\nFig. 3 walkthrough: optimum={float(res.value)}, "
        f"iterations={res.report.iterations} (paper text: 9 over three "
        f"3-iteration products; paper formula N*m = 12), "
        f"wall={res.report.wall_ticks}"
    )


def test_fig3_schedule_sweep(benchmark, rng):
    arr = PipelinedMatrixStringArray()

    def run_all():
        rows = []
        for n_layers, m in SWEEP:
            g = single_source_sink(rng, n_layers - 1, m)
            res = arr.run_graph(g)
            seq = solve_backward(g)
            assert np.isclose(float(res.value), seq.optimum)
            rows.append(
                [
                    n_layers,
                    m,
                    seq.op_count,
                    res.report.iterations,
                    res.report.wall_ticks,
                    f"{seq.op_count / res.report.iterations:.2f}",
                ]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "Fig. 3 pipelined array: schedule vs sequential baseline",
        ["N", "m", "serial_ops", "iterations", "wall_ticks", "speedup"],
        rows,
    )
    # Shape: speedup approaches m (m PEs at PU -> 1).
    for (n_layers, m), row in zip(SWEEP, rows):
        speedup = float(row[5])
        assert speedup <= m + 1e-9
        if n_layers >= 32:
            assert speedup > 0.9 * m


def test_fig3_iterations_formula(rng, benchmark):
    arr = PipelinedMatrixStringArray()

    def runs():
        out = []
        for n_layers, m in SWEEP:
            g = single_source_sink(rng, n_layers - 1, m)
            out.append((n_layers, m, arr.run_graph(g).report))
        return out

    for n_layers, m, rep in benchmark(runs):
        assert rep.iterations == (n_layers - 1) * m
        assert rep.wall_ticks == (n_layers - 1) * m + m - 1
