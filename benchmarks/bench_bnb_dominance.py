"""BNB — dynamic programming as branch-and-bound with dominance tests.

The paper's introduction identifies DP with "a general top-down OR-tree
search procedure with dominance tests" (Morin & Marsten; Wah, Li & Yu).
This bench makes the identification quantitative: on multistage graphs,
the OR-tree search without dominance expands Θ(m^N) partial paths, with
dominance exactly the DP state count, and the lower-bound test prunes
further on top — the collapse the Principle of Optimality buys.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp import solve_backward
from repro.graphs import uniform_multistage
from repro.search import branch_and_bound
from _benchutil import print_table

SWEEP = [(4, 3), (5, 3), (6, 3), (7, 3), (8, 3)]


def test_bnb_expansion_collapse(benchmark, rng):
    def run_all():
        rows = []
        for n_stages, m in SWEEP:
            g = uniform_multistage(rng, n_stages, m)
            ref = solve_backward(g)
            full = branch_and_bound(g, dominance=False, use_bound=False)
            dom = branch_and_bound(g, dominance=True, use_bound=False)
            both = branch_and_bound(g, dominance=True, use_bound=True)
            for r in (full, dom, both):
                assert np.isclose(r.optimum, ref.optimum)
            rows.append(
                [
                    n_stages,
                    m,
                    full.nodes_expanded,
                    dom.nodes_expanded,
                    both.nodes_expanded,
                    sum(g.stage_sizes[:-1]),
                ]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "DP = B&B + dominance: nodes expanded",
        ["N", "m", "no pruning", "dominance", "dom+bound", "DP states"],
        rows,
    )
    growth = [r[2] for r in rows]
    # Exponential without dominance (xm per extra stage)...
    for a, b in zip(growth, growth[1:]):
        assert b >= 2.5 * a
    # ...flat (state-bounded) with dominance.
    for r in rows:
        assert r[3] <= r[5]
        assert r[4] <= r[3]


def test_bnb_bound_quality(benchmark, rng):
    # The min-edge bound helps most when edge costs are spread out.
    def run_all():
        g_tight = uniform_multistage(rng, 8, 4, low=4.9, high=5.1)
        g_spread = uniform_multistage(rng, 8, 4, low=0.0, high=10.0)
        out = []
        for name, g in (("tight", g_tight), ("spread", g_spread)):
            dom = branch_and_bound(g, dominance=True, use_bound=False)
            both = branch_and_bound(g, dominance=True, use_bound=True)
            out.append((name, dom.nodes_expanded, both.nodes_expanded))
        return out

    res = benchmark(run_all)
    for _name, dom, both in res:
        assert both <= dom
