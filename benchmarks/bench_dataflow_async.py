"""DATAFLOW — asynchronous evaluation of multiplication trees (§4 end).

Paper artifacts reproduced/quantified:

* "the tree of matrix multiplications can be treated as a dataflow
  graph" — the optimal-order tree of the secondary optimization problem
  executed asynchronously, with per-task durations from the mesh array's
  rectangular cycle model; asynchronous firing beats a round barrier
  once durations are skewed.
* The fixed balanced tree vs the adaptive round scheduler: rounds_only
  re-pairs each round (choosing its own tree) and therefore lower-bounds
  the fixed tree — equal at K = 1 and K ≥ n/2 (measured).
* The secondary optimization problem itself (optimal stage-reduction
  order): comparison-count savings over the naive order on skewed
  stage-size vectors.
* Instance streaming through the Fig. 3 array: the fill/drain skew is
  paid once per stream, so amortized per-instance time approaches the
  ideal ``(P−1)·m``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataflow import execute_dataflow, tasks_balanced_tree, tasks_from_expression
from repro.dnc import rounds_only
from repro.dp import optimal_reduction_order, solve_matrix_chain
from repro.graphs import random_multistage, single_source_sink
from repro.systolic import PipelinedMatrixStringArray, run_stream
from _benchutil import print_table


def test_dataflow_async_beats_round_barrier(benchmark):
    # Skewed rectangular chain: round-synchronous execution pays the
    # slowest multiply every round; dataflow overlaps them.
    dims = [60, 2, 48, 3, 64, 2, 40, 3, 56]
    order = solve_matrix_chain(dims)
    tasks, _root = tasks_from_expression(dims, order.expression)
    by_name = {t.name: t for t in tasks}

    def run_all():
        rows = []
        for k in (1, 2, 3, 4):
            s = execute_dataflow(tasks, k)
            # Synchronous round model: greedily level-schedule the same
            # tree but hold each wave until its slowest task finishes.
            # tasks are emitted children-first, so one forward pass levels them.
            level = {}
            for t in tasks:
                level[t.name] = 1 + max((level[d] for d in t.deps), default=0)
            sync = 0.0
            for lv in sorted(set(level.values())):
                wave = [by_name[n].duration for n, l in level.items() if l == lv]
                # Each wave needs ceil(len/k) slots of its max duration.
                sync += -(-len(wave) // k) * max(wave)
            rows.append([k, f"{s.makespan:.0f}", f"{sync:.0f}", f"{s.utilization:.3f}"])
        return rows

    rows = benchmark(run_all)
    print_table(
        "Asynchronous dataflow vs round-synchronous (skewed chain)",
        ["K", "dataflow makespan", "sync-wave makespan", "dataflow util"],
        rows,
    )
    for row in rows[1:]:  # any parallelism: async at least ties, usually wins
        assert float(row[1]) <= float(row[2])
    assert any(float(r[1]) < float(r[2]) for r in rows[1:])


def test_fixed_tree_vs_adaptive_rounds(benchmark):
    def run_all():
        rows = []
        for n, k in [(16, 1), (16, 4), (16, 8), (64, 8), (64, 32), (100, 3)]:
            tasks, _ = tasks_balanced_tree(n)
            s = execute_dataflow(tasks, k)
            rows.append([n, k, int(s.makespan), rounds_only(n, k)])
        return rows

    rows = benchmark(run_all)
    print_table(
        "Fixed balanced tree vs adaptive pairing (uniform durations)",
        ["N", "K", "fixed-tree makespan", "adaptive rounds"],
        rows,
    )
    for n, k, fixed, adaptive in rows:
        assert fixed >= adaptive
        if k == 1 or 2 * k >= n:
            assert fixed == adaptive


def test_secondary_optimization_savings(benchmark, rng):
    def run_all():
        rows = []
        for sizes in ([100, 2, 100, 2, 100], [2, 50, 2, 50, 2, 50, 2], [5, 5, 5, 5, 5]):
            g = random_multistage(rng, sizes)
            plan = optimal_reduction_order(g)
            rows.append(
                [
                    "x".join(map(str, sizes)),
                    plan.optimal_comparisons,
                    plan.naive_comparisons,
                    f"{plan.savings:.2f}x",
                ]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "Secondary optimization: stage-reduction order savings",
        ["stage sizes", "optimal comps", "naive comps", "savings"],
        rows,
    )
    assert float(rows[0][3].rstrip("x")) > 2.5
    assert float(rows[-1][3].rstrip("x")) == 1.0  # uniform: indifferent


def test_streaming_amortization(benchmark, rng):
    arr = PipelinedMatrixStringArray()
    m, n_inter = 6, 4

    def run_all():
        rows = []
        single = arr.run_graph(single_source_sink(rng, n_inter, m)).report
        for count in (1, 4, 16, 64):
            graphs = [single_source_sink(rng, n_inter, m) for _ in range(count)]
            res = run_stream(arr, graphs)
            rows.append(
                [count, res.total_wall_ticks, f"{res.per_instance_wall_ticks:.2f}",
                 single.wall_ticks]
            )
        return rows

    rows = benchmark(run_all)
    print_table(
        "Fig. 3 instance streaming: drain amortization",
        ["instances", "total ticks", "per-instance", "stand-alone"],
        rows,
    )
    per = [float(r[2]) for r in rows]
    assert per == sorted(per, reverse=True)
    # Long streams approach the drain-free ideal: (layers - 1) products
    # of m iterations each, with layers = n_inter + 1.
    ideal = n_inter * m
    assert per[-1] == pytest.approx(ideal, abs=1.0)
